// Tests for LogGP parameter fitting (the §3 derivation of Table 2).
#include <gtest/gtest.h>

#include "calibrate/fitting.h"
#include "common/contracts.h"

namespace wcal = wave::calibrate;
namespace wl = wave::loggp;

TEST(Calibrate, NoiseFreeFitRecoversOffNodeExactly) {
  const auto truth = wl::xt4();
  const auto curve = wcal::measure_curve(truth, /*on_chip=*/false,
                                         wcal::default_sizes());
  wcal::FitQuality q;
  const auto fit = wcal::fit_offnode(curve, truth.eager_limit_bytes, &q);
  EXPECT_NEAR(fit.G, truth.off.G, 1e-9);
  EXPECT_NEAR(fit.L, truth.off.L, 1e-6);
  EXPECT_NEAR(fit.o, truth.off.o, 1e-6);
  EXPECT_GT(q.r_squared_small, 0.999999);
  EXPECT_GT(q.r_squared_large, 0.999999);
}

TEST(Calibrate, NoiseFreeFitRecoversOnChipExactly) {
  const auto truth = wl::xt4();
  const auto curve =
      wcal::measure_curve(truth, /*on_chip=*/true, wcal::default_sizes());
  const auto fit = wcal::fit_onchip(curve, truth.eager_limit_bytes);
  EXPECT_NEAR(fit.Gcopy, truth.on.Gcopy, 1e-9);
  EXPECT_NEAR(fit.Gdma, truth.on.Gdma, 1e-9);
  EXPECT_NEAR(fit.ocopy, truth.on.ocopy, 1e-6);
  EXPECT_NEAR(fit.o, truth.on.o, 1e-6);
}

TEST(Calibrate, FullMachineRoundTrip) {
  const auto truth = wl::xt4();
  const auto fitted = wcal::calibrate_machine(truth);
  EXPECT_NEAR(fitted.off.G, truth.off.G, 1e-9);
  EXPECT_NEAR(fitted.off.L, truth.off.L, 1e-6);
  EXPECT_NEAR(fitted.off.o, truth.off.o, 1e-6);
  EXPECT_NEAR(fitted.on.Gdma, truth.on.Gdma, 1e-9);
}

TEST(Calibrate, NoisyFitStaysClose) {
  const auto truth = wl::xt4();
  wave::common::Rng rng(2026);
  const auto fitted = wcal::calibrate_machine(truth, &rng, 0.01);
  // 1% multiplicative timer noise on ~10 µs measurements translates to
  // roughly 10% uncertainty in the fitted slopes and overheads; L is tiny
  // relative to the intercepts so its absolute error matters more than
  // its ratio.
  EXPECT_NEAR(fitted.off.G / truth.off.G, 1.0, 0.15);
  EXPECT_NEAR(fitted.off.o / truth.off.o, 1.0, 0.10);
  EXPECT_NEAR(fitted.off.L, truth.off.L, 0.50);
  EXPECT_NEAR(fitted.on.ocopy / truth.on.ocopy, 1.0, 0.10);
}

TEST(Calibrate, FitRejectsOneSidedCurves) {
  const auto truth = wl::xt4();
  const auto curve =
      wcal::measure_curve(truth, false, {64, 128, 256, 512});
  EXPECT_THROW(wcal::fit_offnode(curve, truth.eager_limit_bytes),
               wave::common::contract_error);
}

TEST(Calibrate, DefaultSizesBracketTheEagerLimit) {
  const auto sizes = wcal::default_sizes();
  int below = 0, above = 0;
  for (int s : sizes) (s <= 1024 ? below : above)++;
  EXPECT_GE(below, 2);
  EXPECT_GE(above, 2);
  // Includes the 1025-byte point that exposes the protocol jump (§3.1).
  EXPECT_NE(std::find(sizes.begin(), sizes.end(), 1025), sizes.end());
}

TEST(Calibrate, CurveIsSorted) {
  const auto truth = wl::xt4();
  const auto curve =
      wcal::measure_curve(truth, false, {4096, 64, 1025, 512});
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_LT(curve[i - 1].bytes, curve[i].bytes);
}

// Property: the fit is exact for any LogGP machine, not just the XT4.
class CalibrateRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(CalibrateRoundTrip, RecoversScaledMachines) {
  wl::MachineParams truth = wl::xt4();
  const double k = GetParam();
  truth.off.G *= k;
  truth.off.L *= k;
  truth.off.o *= k;
  truth.on.Gcopy *= k;
  truth.on.Gdma *= k;
  truth.on.o *= k;
  truth.on.ocopy *= k;
  const auto fitted = wcal::calibrate_machine(truth);
  EXPECT_NEAR(fitted.off.G / truth.off.G, 1.0, 1e-6);
  EXPECT_NEAR(fitted.off.o / truth.off.o, 1.0, 1e-6);
  EXPECT_NEAR(fitted.on.Gdma / truth.on.Gdma, 1.0, 1e-6);
  EXPECT_NEAR(fitted.on.o / truth.on.o, 1.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(MachineScales, CalibrateRoundTrip,
                         ::testing::Values(0.5, 2.0, 10.0, 50.0));

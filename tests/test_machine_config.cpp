// Machine-config parsing: the machines/*.cfg key/value format, its error
// handling (typos must not become silent defaults), round-tripping, and
// the shipped config files — including the acceptance contract that the
// shipped paper-platform config reproduces the compiled-in XT4 machine
// exactly (same solver output as bench/fig06_scaling's preset).
#include <gtest/gtest.h>

#include <string>

#include "common/contracts.h"
#include "core/benchmarks.h"
#include "core/machine.h"
#include "core/solver.h"
#include "loggp/registry.h"

namespace wc = wave::core;

#ifndef WAVE_MACHINES_DIR
#define WAVE_MACHINES_DIR "machines"
#endif

namespace {

/// A minimal valid config body (XT4 Table 2 values).
std::string minimal_cfg() {
  return "off.G = 0.0004\n"
         "off.L = 0.305\n"
         "off.o = 3.92\n"
         "on.Gcopy = 0.000789\n"
         "on.Gdma = 0.000072\n"
         "on.o = 3.80\n"
         "on.ocopy = 1.98\n";
}

std::string shipped(const std::string& file) {
  return std::string(WAVE_MACHINES_DIR) + "/" + file;
}

// Parsing validates comm_model names against a registry; one shared
// default-constructed registry (builtins only) matches what the configs use.
const wave::loggp::CommModelRegistry kReg;

wc::MachineConfig parse(const std::string& text,
                        const std::string& source = "<string>") {
  return wc::parse_machine_config(text, source, kReg);
}

wc::MachineConfig load(const std::string& path) {
  return wc::load_machine_config(path, kReg);
}

}  // namespace

TEST(MachineConfigParse, MinimalConfigGetsXt4SingleCoreDefaults) {
  const wc::MachineConfig m = parse(minimal_cfg());
  EXPECT_EQ(m.comm_model, "loggp");
  EXPECT_EQ(m.cx, 1);
  EXPECT_EQ(m.cy, 1);
  EXPECT_EQ(m.buses_per_node, 1);
  EXPECT_FALSE(m.synchronization_terms);
  EXPECT_EQ(m.loggp.eager_limit_bytes, 1024);
  EXPECT_DOUBLE_EQ(m.loggp.off.G, 0.0004);
  EXPECT_DOUBLE_EQ(m.loggp.off.oh, 0.0);
  EXPECT_DOUBLE_EQ(m.loggp.off.sync, 0.0);
}

TEST(MachineConfigParse, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# header comment\n\n" + minimal_cfg() + "cx = 2  # trailing comment\n";
  EXPECT_EQ(parse(text).cx, 2);
}

TEST(MachineConfigParse, UnknownKeyThrows) {
  try {
    parse(minimal_cfg() + "of.G = 1\n", "typo.cfg");
    FAIL() << "expected ConfigError";
  } catch (const wc::ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("unknown machine-config key 'of.G'"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("typo.cfg:8"), std::string::npos)
        << e.what();
  }
}

TEST(MachineConfigParse, MissingRequiredKeysThrowsNamingThem) {
  try {
    parse("off.G = 0.0004\noff.L = 0.3\n");
    FAIL() << "expected ConfigError";
  } catch (const wc::ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("missing required key"), std::string::npos) << what;
    EXPECT_NE(what.find("off.o"), std::string::npos) << what;
    EXPECT_NE(what.find("on.Gcopy"), std::string::npos) << what;
  }
}

TEST(MachineConfigParse, DuplicateKeyThrows) {
  EXPECT_THROW(parse(minimal_cfg() + "off.G = 0.1\n"),
               wc::ConfigError);
}

TEST(MachineConfigParse, MalformedValuesThrow) {
  EXPECT_THROW(parse(minimal_cfg() + "cx = fast\n"),
               wc::ConfigError);
  EXPECT_THROW(parse(minimal_cfg() + "cx = 2.5\n"),
               wc::ConfigError);
  EXPECT_THROW(
      parse(minimal_cfg() + "synchronization_terms = ja\n"),
      wc::ConfigError);
  EXPECT_THROW(parse(minimal_cfg() + "just words\n"),
               wc::ConfigError);
}

TEST(MachineConfigParse, NonFiniteAndNegativeParametersThrow) {
  // "nan", "inf" and negative values all parse as doubles, but a NaN gap
  // poisons every prediction and a negative overhead makes time run
  // backwards — each must be rejected at the parse boundary, with the
  // offending file:line and key in the message.
  for (const std::string bad :
       {"nan", "NaN", "inf", "-inf", "1e999", "-0.5"}) {
    const std::string cfg = "off.G = 0.0004\n"
                            "off.L = 0.305\n"
                            "off.o = " + bad + "\n"
                            "on.Gcopy = 0.000789\n"
                            "on.Gdma = 0.000072\n"
                            "on.o = 3.80\n"
                            "on.ocopy = 1.98\n";
    try {
      parse(cfg, "bad.cfg");
      FAIL() << "expected ConfigError for off.o = " << bad;
    } catch (const wc::ConfigError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("bad.cfg:3"), std::string::npos) << what;
      EXPECT_NE(what.find("off.o"), std::string::npos) << what;
    }
  }
  // The optional off-node keys and the on-chip side share the guard.
  EXPECT_THROW(parse(minimal_cfg() + "off.sync = nan\n"), wc::ConfigError);
  EXPECT_THROW(parse(minimal_cfg() + "off.oh = -1\n"), wc::ConfigError);
  EXPECT_THROW(parse("off.G = 0.0004\n"
                     "off.L = 0.305\n"
                     "off.o = 3.92\n"
                     "on.Gcopy = 0.000789\n"
                     "on.Gdma = -0.000072\n"
                     "on.o = 3.80\n"
                     "on.ocopy = 1.98\n"),
               wc::ConfigError);
}

TEST(MachineConfigParse, ZeroParametersStillParse) {
  // Zero is a legitimate calibration value (off.oh and off.sync default
  // to it); the non-negativity guard must not reject the boundary.
  const wc::MachineConfig m = parse(minimal_cfg() + "off.oh = 0\n");
  EXPECT_EQ(m.loggp.off.oh, 0.0);
}

TEST(MachineConfigParse, UnknownCommModelThrowsListingBackends) {
  try {
    parse(minimal_cfg() + "comm_model = telepathy\n");
    FAIL() << "expected ConfigError";
  } catch (const wc::ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("telepathy"), std::string::npos) << what;
    EXPECT_NE(what.find("loggp"), std::string::npos) << what;
    EXPECT_NE(what.find("contention"), std::string::npos) << what;
  }
}

TEST(MachineConfigParse, OutOfDomainValuesThrow) {
  // Structurally fine, semantically invalid: validate() failures surface
  // as ConfigError too (3 cores per node is not a power of two).
  EXPECT_THROW(parse(minimal_cfg() + "cx = 3\n"),
               wc::ConfigError);
}

TEST(MachineConfigRoundTrip, WriteThenParseIsIdentity) {
  for (const wc::MachineConfig& m :
       {wc::MachineConfig::xt4_dual_core(), wc::MachineConfig::xt4_single_core(),
        wc::MachineConfig::sp2_single_core(),
        wc::MachineConfig::xt4_with_cores(8, 2)}) {
    const wc::MachineConfig back =
        parse(wc::write_machine_config(m));
    EXPECT_EQ(back, m) << "round-trip changed machine '" << m.name << "'";
  }
}

TEST(MachineConfigRoundTrip, SurvivesAwkwardParameterValues) {
  wc::MachineConfig m = wc::MachineConfig::xt4_dual_core();
  m.comm_model = "loggps";
  m.loggp.off.G = 1.0 / 3.0;  // no short decimal representation
  m.loggp.off.sync = 6.25e-3;
  EXPECT_EQ(parse(wc::write_machine_config(m)), m);
}

TEST(ShippedConfigs, AllLoadAndValidate) {
  for (const char* file :
       {"xt4-dual.cfg", "xt4-single.cfg", "sp2.cfg", "quadcore-shared-bus.cfg",
        "fatnode-loggps.cfg"}) {
    const wc::MachineConfig m = load(shipped(file));
    EXPECT_FALSE(m.name.empty()) << file;
    EXPECT_NO_THROW(m.validate()) << file;
    EXPECT_NO_THROW(m.make_comm_model(kReg)) << file;
  }
}

TEST(ShippedConfigs, Xt4DualMatchesCompiledInPreset) {
  const wc::MachineConfig loaded =
      load(shipped("xt4-dual.cfg"));
  EXPECT_EQ(loaded, wc::MachineConfig::xt4_dual_core());
}

TEST(ShippedConfigs, Xt4DualReproducesFig06NumbersUnderLogGp) {
  // The acceptance contract: the shipped paper-platform config must give
  // byte-for-byte the same model predictions as the compiled-in machine
  // that bench/fig06_scaling always used.
  wc::benchmarks::Sweep3dConfig cfg;
  cfg.energy_groups = 30;
  const auto app = wc::benchmarks::sweep3d(cfg);
  const wc::Solver from_file(app, load(shipped("xt4-dual.cfg")), kReg);
  const wc::Solver preset(app, wc::MachineConfig::xt4_dual_core(), kReg);
  for (int p : {256, 4096, 65536}) {
    const auto a = from_file.evaluate(p);
    const auto b = preset.evaluate(p);
    EXPECT_EQ(a.iteration.total, b.iteration.total) << "P=" << p;
    EXPECT_EQ(a.iteration.comm, b.iteration.comm) << "P=" << p;
    EXPECT_EQ(a.timestep(), b.timestep()) << "P=" << p;
  }
}

TEST(ShippedConfigs, NameDefaultsToFileStem) {
  // sp2.cfg sets its name explicitly; write a nameless config to a string
  // and check the stem default through load_machine_config's path logic is
  // exercised by the shipped files instead. Parsing a nameless body leaves
  // the name empty.
  EXPECT_TRUE(parse(minimal_cfg()).name.empty());
  EXPECT_EQ(load(shipped("sp2.cfg")).name, "sp2");
}

TEST(ShippedConfigs, MissingFileThrows) {
  EXPECT_THROW(load(shipped("no-such-machine.cfg")),
               wc::ConfigError);
}

TEST(MachineConfigParse, OutOfIntRangeValuesThrowInsteadOfOverflowing) {
  EXPECT_THROW(
      parse(minimal_cfg() + "eager_limit_bytes = 3e9\n"),
      wc::ConfigError);
  EXPECT_THROW(parse(minimal_cfg() + "cx = 1e300\n"),
               wc::ConfigError);
}

TEST(MachineConfigRoundTrip, NamesWithInternalSpacesSurvive) {
  wc::MachineConfig m = wc::MachineConfig::xt4_dual_core();
  m.name = "my test cluster v2";
  m.validate();
  EXPECT_EQ(parse(wc::write_machine_config(m)), m);
}

TEST(MachineConfigValidate, RejectsConfigUnsafeNames) {
  // Names that could not survive the cfg serialization are invalid, so
  // the round-trip guarantee holds for every machine validate() accepts.
  for (const char* bad : {"node #1", " padded", "padded ", "two\nlines"}) {
    wc::MachineConfig m = wc::MachineConfig::xt4_dual_core();
    m.name = bad;
    EXPECT_THROW(m.validate(), wave::common::contract_error) << bad;
  }
}

// Tests for the simulated MPI fabric: protocol costs against Table 1,
// blocking semantics, contention emergence, deadlock detection.
#include <gtest/gtest.h>

#include <stdexcept>

#include "loggp/collectives.h"
#include "loggp/backends.h"
#include "sim/mpi.h"
#include "workloads/pingpong.h"

namespace ws = wave::sim;
namespace wl = wave::loggp;
namespace ww = wave::workloads;

namespace {
const wl::MachineParams kXt4 = wl::xt4();
const wl::LogGpModel kModel(kXt4);
}  // namespace

// Uncontended ping-pong must reproduce the Table 1 end-to-end equations
// exactly — this is the calibration contract between simulator and model.
class PingPongExact : public ::testing::TestWithParam<int> {};

TEST_P(PingPongExact, OffNodeMatchesEquations1And2) {
  const int bytes = GetParam();
  const double sim = ww::pingpong_half_rtt(kXt4, /*on_chip=*/false, bytes);
  EXPECT_NEAR(sim, kModel.total(bytes, wl::Placement::OffNode), 1e-9)
      << "S=" << bytes;
}

TEST_P(PingPongExact, OnChipMatchesEquations5And6) {
  const int bytes = GetParam();
  const double sim = ww::pingpong_half_rtt(kXt4, /*on_chip=*/true, bytes);
  EXPECT_NEAR(sim, kModel.total(bytes, wl::Placement::OnChip), 1e-9)
      << "S=" << bytes;
}

INSTANTIATE_TEST_SUITE_P(MessageSizes, PingPongExact,
                         ::testing::Values(1, 8, 64, 512, 1023, 1024, 1025,
                                           2048, 4096, 8192, 12000));

namespace {

ws::Process sender_then_done(ws::RankCtx ctx, int bytes, double* done_at) {
  co_await ctx.send(1, bytes);
  *done_at = ctx.mpi().engine().now();
}

ws::Process late_receiver(ws::RankCtx ctx, double post_at, double* recv_done) {
  co_await ctx.compute(post_at);
  co_await ctx.recv(0);
  *recv_done = ctx.mpi().engine().now();
}

}  // namespace

TEST(MpiSemantics, EagerSendReturnsWithoutReceiver) {
  // Small sends are buffered: MPI_Send returns after o even if the receive
  // is posted much later (eq. 3).
  ws::World world(kXt4, {0, 1});
  double send_done = -1.0, recv_done = -1.0;
  world.spawn("s", sender_then_done(world.ctx(0), 512, &send_done));
  world.spawn("r", late_receiver(world.ctx(1), 1000.0, &recv_done));
  world.run();
  EXPECT_NEAR(send_done, kXt4.off.o, 1e-9);
  // The receive still pays its processing overhead o after posting.
  EXPECT_NEAR(recv_done, 1000.0 + kXt4.off.o, 1e-9);
}

TEST(MpiSemantics, RendezvousSendBlocksForLateReceiver) {
  // Large sends wait for the matching receive: MPI_Send cannot return
  // before the ACK, which the receiver only triggers at post time.
  ws::World world(kXt4, {0, 1});
  double send_done = -1.0, recv_done = -1.0;
  world.spawn("s", sender_then_done(world.ctx(0), 8192, &send_done));
  world.spawn("r", late_receiver(world.ctx(1), 500.0, &recv_done));
  world.run();
  EXPECT_GT(send_done, 500.0);  // blocked on the handshake
  // Receiver occupancy from post time follows eq. (4b): the ACK round
  // trip, the sender's NIC copy, the wire transfer, and the receive
  // processing are all on the receiver's critical path.
  EXPECT_NEAR(recv_done - 500.0, kModel.recv(8192, wl::Placement::OffNode),
              1e-6);
}

TEST(MpiSemantics, MessagesMatchInOrder) {
  // Two back-to-back sends on one channel complete two receives in order.
  struct Probe {
    double first = -1.0, second = -1.0;
  };
  static Probe probe;
  probe = Probe{};
  auto sender = [](ws::RankCtx ctx) -> ws::Process {
    co_await ctx.send(1, 100);
    co_await ctx.send(1, 100);
  };
  auto receiver = [](ws::RankCtx ctx) -> ws::Process {
    co_await ctx.recv(0);
    probe.first = ctx.mpi().engine().now();
    co_await ctx.recv(0);
    probe.second = ctx.mpi().engine().now();
  };
  ws::World world(kXt4, {0, 1});
  world.spawn("s", sender(world.ctx(0)));
  world.spawn("r", receiver(world.ctx(1)));
  world.run();
  EXPECT_GT(probe.first, 0.0);
  EXPECT_GT(probe.second, probe.first);
}

TEST(MpiSemantics, DeadlockIsDetectedAndNamed) {
  // Two ranks that both receive first never progress.
  auto stuck = [](ws::RankCtx ctx, int peer) -> ws::Process {
    co_await ctx.recv(peer);
  };
  ws::World world(kXt4, {0, 1});
  world.spawn("rank0", stuck(world.ctx(0), 1));
  world.spawn("rank1", stuck(world.ctx(1), 0));
  try {
    world.run();
    FAIL() << "expected deadlock";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadlock"), std::string::npos);
    EXPECT_NE(what.find("rank0"), std::string::npos);
  }
}

TEST(MpiSemantics, ExchangeOverlapsBothDirections) {
  // A pairwise exchange completes in about one total-comm time, not two:
  // the overlapped halves share the wire window.
  auto exchanger = [](ws::RankCtx ctx, int peer, double* done) -> ws::Process {
    co_await ctx.mpi().exchange(ctx.rank(), peer, 512);
    *done = ctx.mpi().engine().now();
  };
  ws::World world(kXt4, {0, 1});
  double d0 = 0, d1 = 0;
  world.spawn("a", exchanger(world.ctx(0), 1, &d0));
  world.spawn("b", exchanger(world.ctx(1), 0, &d1));
  world.run();
  const double total = kModel.total(512, wl::Placement::OffNode);
  EXPECT_LT(d0, 1.8 * total);
  EXPECT_LT(d1, 1.8 * total);
  EXPECT_GE(d0, total - 1e-9);
}

TEST(MpiSemantics, SelfSendRejected) {
  auto bad = [](ws::RankCtx ctx) -> ws::Process { co_await ctx.send(0, 8); };
  ws::World world(kXt4, {0, 1});
  world.spawn("bad", bad(world.ctx(0)));
  EXPECT_THROW(world.run(), wave::common::contract_error);
}

TEST(MpiContention, SharedBusDelaysConcurrentLargeTransfers) {
  // Two senders on separate nodes stream to two receivers sharing one
  // node: the incoming DMA windows collide on the receivers' shared bus.
  // With the receivers on separate nodes the same traffic is uncontended.
  auto burst = [](ws::RankCtx ctx, int dst) -> ws::Process {
    for (int i = 0; i < 8; ++i) co_await ctx.send(dst, 65536);
  };
  auto sink = [](ws::RankCtx ctx, int src) -> ws::Process {
    for (int i = 0; i < 8; ++i) co_await ctx.recv(src);
  };
  auto run_with = [&](std::vector<int> placement) {
    ws::World world(kXt4, std::move(placement));
    world.spawn("s0", burst(world.ctx(0), 2));
    world.spawn("s1", burst(world.ctx(1), 3));
    world.spawn("r2", sink(world.ctx(2), 0));
    world.spawn("r3", sink(world.ctx(3), 1));
    world.run();
    return world.mpi().bus_wait_total();
  };
  const double shared = run_with({0, 1, 2, 2});
  const double separate = run_with({0, 1, 2, 3});
  EXPECT_GT(shared, 0.0);
  EXPECT_DOUBLE_EQ(separate, 0.0);
}

TEST(MpiAllreduce, MatchesEquation9Within10Percent) {
  // §3.3 reports < 2% on the real machine; our mechanistic simulator lands
  // within a few percent of eq. 9 for dual-core nodes once there are
  // several off-node stages (P = 4 has a single off-node stage, where the
  // per-stage edge effects are proportionally largest).
  for (int p : {4, 16, 64, 256}) {
    const double sim = ww::allreduce_sim_time(kXt4, p, 2);
    const double model = wl::allreduce_time(kModel, p, 2, 8);
    EXPECT_NEAR(model / sim, 1.0, p == 4 ? 0.15 : 0.10) << "P=" << p;
  }
}

TEST(MpiAllreduce, SingleCoreMatchesLogPModel) {
  for (int p : {4, 16, 64}) {
    const double sim = ww::allreduce_sim_time(kXt4, p, 1);
    const double model = wl::allreduce_time(kModel, p, 1, 8);
    EXPECT_NEAR(model / sim, 1.0, 0.10) << "P=" << p;
  }
}

TEST(MpiAllreduce, NonPowerOfTwoFoldsAndCompletes) {
  // Non-power-of-two rank counts use the fold algorithm: an extra
  // contribute/return round beyond the nearest smaller power of two.
  const double p4 = ww::allreduce_sim_time(kXt4, 4, 1);
  const double p5 = ww::allreduce_sim_time(kXt4, 5, 1);
  const double p8 = ww::allreduce_sim_time(kXt4, 8, 1);
  EXPECT_GT(p5, p4);
  // The fold costs about two extra message times over the p=4 schedule.
  EXPECT_LT(p5, p8 + 2.0 * kModel.total(8, wl::Placement::OffNode));
}

TEST(MpiWorld, RunIsDeterministic) {
  auto once = [] {
    return ww::allreduce_sim_time(kXt4, 64, 2);
  };
  EXPECT_DOUBLE_EQ(once(), once());
}

TEST(MpiProtocol, ExactForOtherMachines) {
  // The simulator is parameterized, not XT4-hard-coded: with SP/2
  // parameters the uncontended ping-pong reproduces that machine's
  // Table 1 equations exactly too.
  const wl::MachineParams sp2 = wl::sp2();
  const wl::LogGpModel sp2_model(sp2);
  for (int bytes : {8, 1024, 1025, 8192}) {
    EXPECT_NEAR(ww::pingpong_half_rtt(sp2, false, bytes),
                sp2_model.total(bytes, wl::Placement::OffNode), 1e-9)
        << "S=" << bytes;
  }
}

TEST(MpiStats, BusyCountersTrackOperations) {
  // One eager send: the sender is busy exactly o; the receiver posting
  // late is busy exactly its processing overhead o.
  ws::World world(kXt4, {0, 1});
  double send_done = 0, recv_done = 0;
  world.spawn("s", sender_then_done(world.ctx(0), 256, &send_done));
  world.spawn("r", late_receiver(world.ctx(1), 100.0, &recv_done));
  world.run();
  EXPECT_NEAR(world.mpi().mpi_busy(0), kXt4.off.o, 1e-9);
  EXPECT_NEAR(world.mpi().mpi_busy(1), kXt4.off.o, 1e-9);
  EXPECT_NEAR(world.mpi().mpi_busy_mean(), kXt4.off.o, 1e-9);
}

TEST(MpiStats, RendezvousBlockingCountsAsBusy) {
  // A large send to a receiver that posts at t=500 keeps the sender busy
  // from t=0 until the handshake completes: busy > 500.
  ws::World world(kXt4, {0, 1});
  double send_done = 0, recv_done = 0;
  world.spawn("s", sender_then_done(world.ctx(0), 8192, &send_done));
  world.spawn("r", late_receiver(world.ctx(1), 500.0, &recv_done));
  world.run();
  EXPECT_GT(world.mpi().mpi_busy(0), 500.0);
  EXPECT_THROW(world.mpi().mpi_busy(7), wave::common::contract_error);
}

namespace {

ws::Process isend_then_compute(ws::RankCtx ctx, int bytes, double* resumed_at,
                               double* wait_done_at) {
  auto req = ctx.make_request();
  co_await ctx.isend(1, bytes, req);
  *resumed_at = ctx.mpi().engine().now();
  co_await ctx.compute(50.0);
  co_await ctx.wait(req);
  *wait_done_at = ctx.mpi().engine().now();
}

}  // namespace

TEST(MpiIsend, ResumesAfterCpuPhaseOnly) {
  // A rendezvous-size isend returns after the CPU injection overhead o,
  // not after the handshake; the wait() completes once the late receiver
  // has triggered the ACK.
  ws::World world(kXt4, {0, 1});
  double resumed = -1.0, wait_done = -1.0, recv_done = -1.0;
  world.spawn("s", isend_then_compute(world.ctx(0), 8192, &resumed,
                                      &wait_done));
  world.spawn("r", late_receiver(world.ctx(1), 200.0, &recv_done));
  world.run();
  EXPECT_NEAR(resumed, kXt4.off.o, 1e-9);   // not blocked on the ACK
  EXPECT_GT(wait_done, 200.0);              // ACK needed the receive post
}

TEST(MpiIsend, WaitIsFreeWhenAlreadyComplete) {
  // Eager isend completes during the 50 µs compute window: the wait
  // returns at once and the operation costs exactly o of busy time plus
  // zero wait.
  ws::World world(kXt4, {0, 1});
  double resumed = -1.0, wait_done = -1.0, recv_done = -1.0;
  world.spawn("s", isend_then_compute(world.ctx(0), 256, &resumed,
                                      &wait_done));
  world.spawn("r", late_receiver(world.ctx(1), 500.0, &recv_done));
  world.run();
  EXPECT_NEAR(resumed, kXt4.off.o, 1e-9);
  EXPECT_NEAR(wait_done, kXt4.off.o + 50.0, 1e-9);
  EXPECT_NEAR(world.mpi().mpi_busy(0), kXt4.off.o, 1e-9);
}

TEST(MpiIsend, RejectsNullRequest) {
  auto bad = [](ws::RankCtx ctx) -> ws::Process {
    co_await ctx.isend(1, 8, nullptr);
  };
  ws::World world(kXt4, {0, 1});
  world.spawn("bad", bad(world.ctx(0)));
  EXPECT_THROW(world.run(), wave::common::contract_error);
}

TEST(MpiWorld, RejectsEmptyProcess) {
  ws::World world(kXt4, {0, 1});
  EXPECT_THROW(world.spawn("p", ws::Process{}),
               wave::common::contract_error);
}

// The concurrent halo-swap primitive: every half of every exchange is
// posted before any completes, so a chain of ranks swapping with both
// neighbours finishes in O(1) exchange times — it must not cascade rank
// by rank the way sequential pairwise exchanges do.
TEST(MpiHaloExchange, ChainSwapsOverlapInsteadOfCascading) {
  constexpr int kRanks = 8;
  constexpr int kBytes = 256;
  auto chain_placement = [] {
    std::vector<int> nodes(kRanks);
    for (int r = 0; r < kRanks; ++r) nodes[r] = r;
    return nodes;
  };

  auto halo_rank = [](ws::RankCtx ctx) -> ws::Process {
    auto halo = ctx.mpi().halo_exchange(ctx.rank());
    if (ctx.rank() > 0) halo.add(ctx.rank() - 1, kBytes);
    if (ctx.rank() + 1 < ctx.size()) halo.add(ctx.rank() + 1, kBytes);
    co_await halo;
  };
  ws::World concurrent(kXt4, chain_placement());
  for (int r = 0; r < kRanks; ++r)
    concurrent.spawn("rank" + std::to_string(r),
                     halo_rank(concurrent.ctx(r)));
  const double t_concurrent = concurrent.run();

  // The same swap as sequential pairwise exchanges: rank r's West
  // exchange can only match once r-1 has finished its own West exchange
  // and posted East, so completion ripples down the chain.
  auto sequential_rank = [](ws::RankCtx ctx) -> ws::Process {
    if (ctx.rank() > 0)
      co_await ctx.mpi().exchange(ctx.rank(), ctx.rank() - 1, kBytes);
    if (ctx.rank() + 1 < ctx.size())
      co_await ctx.mpi().exchange(ctx.rank(), ctx.rank() + 1, kBytes);
  };
  ws::World sequential(kXt4, chain_placement());
  for (int r = 0; r < kRanks; ++r)
    sequential.spawn("rank" + std::to_string(r),
                     sequential_rank(sequential.ctx(r)));
  const double t_sequential = sequential.run();

  // Concurrent must beat the cascade decisively, and must cost only a
  // small constant number of message times — not O(ranks) of them.
  EXPECT_LT(t_concurrent, t_sequential);
  EXPECT_LT(t_concurrent,
            4.0 * kModel.total(kBytes, wl::Placement::OffNode));
  EXPECT_GT(t_sequential,
            (kRanks / 2.0) * kModel.total(kBytes, wl::Placement::OffNode));
}

// An empty halo swap completes immediately; a single-peer swap is one
// plain exchange.
TEST(MpiHaloExchange, EmptySwapIsFree) {
  auto lonely = [](ws::RankCtx ctx) -> ws::Process {
    auto halo = ctx.mpi().halo_exchange(ctx.rank());
    co_await halo;  // no peers added
    co_await ctx.compute(5.0);
  };
  ws::World world(kXt4, {0, 1});
  auto idle = [](ws::RankCtx) -> ws::Process { co_return; };
  world.spawn("lonely", lonely(world.ctx(0)));
  world.spawn("idle", idle(world.ctx(1)));
  EXPECT_NEAR(world.run(), 5.0, 1e-9);
}

// The reproducible chaos suite: deterministic fault injection against a
// live daemon. Every recovery path the serving layer claims — deadline
// expiry answered on time even with stalled workers, cooperative
// cancellation of slow evaluations, snapshot write failures that never
// eat the previous snapshot, overload shedding, malformed input — is
// driven here by a seeded FaultPlan, so a failure replays exactly.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "serve/faults.h"
#include "serve/snapshot.h"
#include "serve_test_util.h"
#include "wave/serve.h"

namespace ws = wave::serve;
using serve_test::ServerFixture;
using serve_test::unique_path;
using Clock = std::chrono::steady_clock;

namespace {

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

TEST(ServeFaults, DecisionsArePureInSeedAndId) {
  ws::FaultPlan::Spec spec;
  spec.seed = 42;
  spec.slow_eval_permille = 300;
  spec.stall_worker_permille = 300;
  const ws::FaultPlan a(spec), b(spec);
  spec.seed = 43;
  const ws::FaultPlan other(spec);

  int slowed = 0, differs = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string id = "req" + std::to_string(i);
    // Identical plans agree on every id — determinism regardless of call
    // order or thread interleaving.
    EXPECT_EQ(a.slow_eval(id), b.slow_eval(id)) << id;
    EXPECT_EQ(a.stall_worker(id), b.stall_worker(id)) << id;
    slowed += a.slow_eval(id) ? 1 : 0;
    differs += a.slow_eval(id) != other.slow_eval(id) ? 1 : 0;
  }
  // ~30% of requests are slowed, and a different seed picks a different
  // subset (loose bounds: the hash is uniform, not exact).
  EXPECT_GT(slowed, 200 * 0.15);
  EXPECT_LT(slowed, 200 * 0.50);
  EXPECT_GT(differs, 0);

  // The permille extremes are exact, not probabilistic.
  spec.slow_eval_permille = 0;
  const ws::FaultPlan never(spec);
  spec.slow_eval_permille = 1000;
  const ws::FaultPlan always(spec);
  for (int i = 0; i < 50; ++i) {
    const std::string id = "x" + std::to_string(i);
    EXPECT_FALSE(never.slow_eval(id));
    EXPECT_TRUE(always.slow_eval(id));
  }
}

TEST(ServeFaults, DeadlineIsAnsweredOnTimeDespiteASlowEval) {
  // Every eval is artificially slowed by 2 s; the request carries a 50 ms
  // deadline. The structured deadline_exceeded answer must arrive in
  // deadline time, not eval time — and the server must stay healthy.
  ws::FaultPlan::Spec spec;
  spec.slow_eval_permille = 1000;
  spec.slow_eval_ms = 2000;
  ServerFixture f({}, spec);

  const Clock::time_point start = Clock::now();
  const ws::Response r = f.call(
      R"({"id":"d","op":"eval","processors":64,"deadline_ms":50})");
  const double elapsed_ms = ms_since(start);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error_code, "deadline_exceeded") << r.raw;
  EXPECT_LT(elapsed_ms, 1500.0) << "answer took eval time, not deadline time";
  EXPECT_EQ(f.server->stats().deadline_exceeded, 1u);

  // The cancelled eval never poisons a later, deadline-less repeat.
  spec.slow_eval_ms = 30;
  ServerFixture healthy({}, spec);
  EXPECT_TRUE(healthy.call(R"({"id":"h","op":"eval","processors":64})").ok);
}

TEST(ServeFaults, WatchdogAnswersWhileTheOnlyWorkerIsStalled) {
  // One worker, and it stalls for 2 s on every request it dequeues. The
  // deadline watchdog — not the worker — must deliver the answer.
  ws::FaultPlan::Spec spec;
  spec.stall_worker_permille = 1000;
  spec.stall_ms = 2000;
  wave::ServeOptions options;
  options.workers = 1;
  ServerFixture f(options, spec);

  const Clock::time_point start = Clock::now();
  const ws::Response r = f.call(
      R"({"id":"w","op":"eval","processors":64,"deadline_ms":40})");
  EXPECT_EQ(r.error_code, "deadline_exceeded") << r.raw;
  EXPECT_LT(ms_since(start), 1500.0) << "watchdog waited for the worker";
}

TEST(ServeFaults, DefaultDeadlineAppliesToBareRequests) {
  ws::FaultPlan::Spec spec;
  spec.slow_eval_permille = 1000;
  spec.slow_eval_ms = 2000;
  wave::ServeOptions options;
  options.default_deadline_ms = 50;
  ServerFixture f(options, spec);
  const ws::Response r =
      f.call(R"({"id":"b","op":"eval","processors":64})");  // no deadline_ms
  EXPECT_EQ(r.error_code, "deadline_exceeded") << r.raw;
}

TEST(ServeFaults, SnapshotWriteFailuresAreStructuredAndNonDestructive) {
  ws::FaultPlan::Spec spec;
  spec.fail_snapshot_writes = 1;
  wave::ServeOptions options;
  options.snapshot_path = unique_path(".snap");
  ServerFixture f(options, spec);

  ASSERT_TRUE(f.call(R"({"id":"e","op":"eval","processors":64})").ok);
  // First snapshot op eats the injected failure: structured error, no file.
  const ws::Response failed = f.call(R"({"id":"s1","op":"snapshot"})");
  EXPECT_FALSE(failed.ok);
  EXPECT_EQ(failed.error_code, "snapshot_failed") << failed.raw;
  EXPECT_FALSE(ws::read_snapshot(options.snapshot_path).ok());
  // Second succeeds; the daemon kept serving throughout.
  EXPECT_TRUE(f.call(R"({"id":"s2","op":"snapshot"})").ok);
  EXPECT_TRUE(ws::read_snapshot(options.snapshot_path).ok());

  const wave::ServeStats stats = f.server->stats();
  EXPECT_EQ(stats.snapshot_write_failures, 1u);
  EXPECT_EQ(stats.snapshots_written, 1u);
}

TEST(ServeFaults, ChaosMixCompletesWithExactAccounting) {
  // The full storm at once, from two concurrent connections: slowed and
  // stalled evals racing 30 ms deadlines, DES overload with and without
  // degrade opt-in, malformed lines, a snapshot failure — all decided by
  // the seed, never by scheduling. The server must answer every single
  // request exactly once (no hang: the reads below would block forever on
  // a lost response) and the outcome counters must balance to the total.
  ws::FaultPlan::Spec spec;
  spec.seed = 7;
  spec.slow_eval_permille = 350;
  spec.slow_eval_ms = 60;
  spec.stall_worker_permille = 250;
  spec.stall_ms = 80;
  spec.fail_snapshot_writes = 1;
  wave::ServeOptions options;
  options.workers = 2;
  options.des_queue_limit = 1;
  options.snapshot_path = unique_path(".snap");
  ServerFixture f(options, spec);

  constexpr int kPerClient = 30;
  auto drive = [&f](int offset, wave::serve::Client& client) {
    int sent = 0;
    for (int i = 0; i < kPerClient; ++i) {
      const int id = offset + i;
      std::string line;
      switch (i % 6) {
        case 0:  // analytic with a tight deadline (may expire when slowed)
          line = "{\"id\":\"a" + std::to_string(id) +
                 "\",\"op\":\"eval\",\"processors\":" +
                 std::to_string(4 << (i % 5)) + ",\"deadline_ms\":30}";
          break;
        case 1:  // DES, no opt-in: sheds when the 1-slot queue is busy
          line = "{\"id\":\"s" + std::to_string(id) +
                 "\",\"op\":\"eval\",\"engine\":\"sim\",\"processors\":16}";
          break;
        case 2:  // DES with degrade opt-in
          line = "{\"id\":\"g" + std::to_string(id) +
                 "\",\"op\":\"eval\",\"engine\":\"sim\",\"processors\":16,"
                 "\"degrade\":true,\"deadline_ms\":500}";
          break;
        case 3:  // malformed
          line = "{\"id\":" + std::to_string(id) + "broken";
          break;
        case 4:  // unknown machine
          line = "{\"id\":\"m" + std::to_string(id) +
                 "\",\"op\":\"eval\",\"machine\":\"ghost\"}";
          break;
        case 5:  // snapshot op (the first one server-wide eats the fault)
          line = "{\"id\":\"n" + std::to_string(id) + "\",\"op\":\"snapshot\"}";
          break;
      }
      if (client.send_line(line).is_ok()) ++sent;
    }
    return sent;
  };

  wave::serve::Client second;
  ASSERT_TRUE(second.connect(f.options.socket_path).is_ok());
  int sent_second = 0;
  std::thread other([&] { sent_second = drive(1000, second); });
  const int sent_first = drive(0, f.client);
  other.join();
  ASSERT_EQ(sent_first, kPerClient);
  ASSERT_EQ(sent_second, kPerClient);

  // Every request gets exactly one response on its own connection.
  for (int i = 0; i < kPerClient; ++i) {
    ASSERT_TRUE(f.client.read_line().ok()) << "lost a response at " << i;
    ASSERT_TRUE(second.read_line().ok()) << "lost a response at " << i;
  }

  // Quiesce (cancelled evals may still be draining), then audit.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const wave::ServeStats s = f.server->stats();
  EXPECT_EQ(s.requests, 2u * kPerClient);
  EXPECT_EQ(s.requests, s.ok + s.degraded + s.shed + s.deadline_exceeded +
                            s.invalid + s.eval_errors +
                            s.snapshot_write_failures);
  EXPECT_EQ(s.invalid, 2u * kPerClient / 6u);      // the malformed class
  EXPECT_EQ(s.eval_errors, 2u * kPerClient / 6u);  // the unknown machine
  EXPECT_EQ(s.snapshot_write_failures, 1u);        // exactly the injected one
  EXPECT_GT(s.ok, 0u);
  second.close();
  std::remove(options.snapshot_path.c_str());
}

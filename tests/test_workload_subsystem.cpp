// Tests for the pluggable workload subsystem: registry semantics, each
// workload's paired model+sim contract, the degenerate-case pinning of
// pipeline1d, and the cross-workload matrix determinism gate.
#include <gtest/gtest.h>

#include <memory>

#include "common/contracts.h"
#include "core/solver.h"
#include "runner/reference_grids.h"
#include "runner/runner.h"
#include "loggp/registry.h"
#include "wave/context.h"
#include "workloads/builtin.h"
#include "workloads/pipeline1d.h"
#include "workloads/registry.h"

namespace wc = wave::core;
namespace wl = wave::loggp;
namespace wr = wave::runner;
namespace ww = wave::workloads;

namespace {

const wc::MachineConfig kSingle = wc::MachineConfig::xt4_single_core();
const wc::MachineConfig kDual = wc::MachineConfig::xt4_dual_core();

// Shared read-only registries / context: tests that register their own
// entries construct local registries instead of mutating these.
const ww::WorkloadRegistry kWorkloads;
const wl::CommModelRegistry kComm;
const wave::Context kCtx;

ww::WorkloadInputs inputs_for(int processors, int iterations = 1) {
  ww::WorkloadInputs in;
  in.grid = wave::topo::closest_to_square(processors);
  in.iterations = iterations;
  return in;
}

}  // namespace

// ---- registry semantics -----------------------------------------------

TEST(WorkloadRegistry, ServesTheSixBuiltins) {
  const auto list = kWorkloads.list();
  ASSERT_GE(list.size(), 6u);
  // The two migrated workloads lead, the four new ones follow.
  EXPECT_EQ(list[0].name, "wavefront");
  EXPECT_EQ(list[1].name, "pingpong");
  EXPECT_EQ(list[2].name, "halo2d");
  EXPECT_EQ(list[3].name, "pipeline1d");
  EXPECT_EQ(list[4].name, "sweep3d-hybrid");
  EXPECT_EQ(list[5].name, "allreduce-storm");
  for (const auto& info : list) {
    EXPECT_FALSE(info.description.empty()) << info.name;
    EXPECT_TRUE(kWorkloads.contains(info.name));
  }
}

TEST(WorkloadRegistry, EveryEntryHasBothPaths) {
  // The subsystem's core contract: each registered workload answers both
  // the analytic and the DES path on the same small inputs.
  for (const std::string& name : ww::workload_names(kWorkloads)) {
    const auto workload = ww::get_workload(kWorkloads, name);
    const ww::WorkloadInputs in = inputs_for(4);
    const ww::ModelOutput model = workload->predict(kSingle, kComm, in);
    const ww::SimOutput sim = workload->simulate(kSingle, kComm, in);
    EXPECT_GT(model.time_us, 0.0) << name;
    EXPECT_GT(sim.time_us, 0.0) << name;
    EXPECT_GT(sim.events, 0u) << name;
    EXPECT_GT(workload->tolerance(), 0.0) << name;
  }
}

TEST(WorkloadRegistry, UnknownNameThrowsListingAlternatives) {
  try {
    ww::get_workload(kWorkloads, "no-such-workload");
    FAIL() << "expected contract_error";
  } catch (const wave::common::contract_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no-such-workload"), std::string::npos);
    EXPECT_NE(msg.find("wavefront"), std::string::npos);
    EXPECT_NE(msg.find("allreduce-storm"), std::string::npos);
  }
  EXPECT_THROW(ww::require_workload(kWorkloads, "nope"), wave::common::contract_error);
  EXPECT_FALSE(kWorkloads.contains(""));
}

TEST(WorkloadRegistry, DuplicateAndInvalidNamesAreRejected) {
  // A fresh registry already holds the built-ins, so re-adding one is a
  // duplicate.
  ww::WorkloadRegistry registry;
  auto dup = std::make_shared<ww::WavefrontWorkload>();
  EXPECT_THROW(registry.add(dup), wave::common::contract_error);
  EXPECT_THROW(registry.add(nullptr), wave::common::contract_error);
}

TEST(WorkloadRegistry, AddAndLookUpACustomWorkload) {
  // Studies register their own workloads; the registry serves them by
  // name exactly like the built-ins. Registered once per process: the
  // class is local so no other test can collide with it.
  class TinyWorkload : public ww::Workload {
   public:
    const std::string& name() const override {
      static const std::string n = "tiny-test-workload";
      return n;
    }
    const std::string& description() const override {
      static const std::string d = "registration test stub";
      return d;
    }
    double tolerance() const override { return 1.0; }
    ww::ModelOutput predict(const wc::MachineConfig&, const wl::CommModel&,
                            const ww::WorkloadInputs&) const override {
      return {1.0, 0.0, {}};
    }
    ww::SimOutput simulate(const wc::MachineConfig&,
                           const wave::sim::ProtocolOptions&,
                           const ww::WorkloadInputs&) const override {
      ww::SimOutput out;
      out.time_us = 1.0;
      return out;
    }
  };
  ww::WorkloadRegistry registry;
  registry.add(std::make_shared<TinyWorkload>());
  EXPECT_EQ(ww::get_workload(registry, "tiny-test-workload")->tolerance(),
            1.0);
  const ww::ValidationReport report =
      ww::get_workload(registry, "tiny-test-workload")
          ->validate(kSingle, kComm, inputs_for(1));
  EXPECT_TRUE(report.ok);
  EXPECT_DOUBLE_EQ(report.rel_error, 0.0);
}

// ---- model-vs-sim contracts -------------------------------------------

// Each workload's validate() must hold its declared tolerance on the
// machines whose assumptions the fabric reproduces (loggp / loggps).
class WorkloadContract : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadContract, HoldsOnXt4SingleUnderLogGp) {
  const auto workload = ww::get_workload(kWorkloads, GetParam());
  const ww::ValidationReport report =
      workload->validate(kSingle, kComm, inputs_for(16));
  EXPECT_TRUE(report.ok)
      << GetParam() << ": rel_error " << report.rel_error << " > tolerance "
      << report.tolerance << " (model " << report.model.time_us << " us, sim "
      << report.sim.time_us << " us)";
}

TEST_P(WorkloadContract, HoldsOnXt4DualUnderLogGps) {
  wc::MachineConfig machine = kDual;
  machine.comm_model = "loggps";
  machine.loggp.off.sync = 2.5;  // a visible rendezvous synchronization cost
  const auto workload = ww::get_workload(kWorkloads, GetParam());
  const ww::ValidationReport report =
      workload->validate(machine, kComm, inputs_for(16));
  EXPECT_TRUE(report.ok)
      << GetParam() << ": rel_error " << report.rel_error << " > tolerance "
      << report.tolerance << " (model " << report.model.time_us << " us, sim "
      << report.sim.time_us << " us)";
}

INSTANTIATE_TEST_SUITE_P(AllBuiltins, WorkloadContract,
                         ::testing::Values("wavefront", "pingpong", "halo2d",
                                           "pipeline1d", "sweep3d-hybrid",
                                           "allreduce-storm"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST(WorkloadContract, PingpongIsExactUnderLogGp) {
  // The calibration workload's model *is* the Table-1 closed form the
  // fabric implements: agreement is exact, not approximate, for both the
  // eager and the rendezvous protocol.
  const auto pingpong = ww::get_workload(kWorkloads, "pingpong");
  for (const int bytes : {64, 1024, 8192}) {
    ww::WorkloadInputs in = inputs_for(2);
    in.params["bytes"] = bytes;
    const ww::ValidationReport report = pingpong->validate(kSingle, kComm, in);
    EXPECT_NEAR(report.model.time_us, report.sim.time_us, 1e-9)
        << bytes << " bytes";
  }
}

TEST(WorkloadContract, DeterministicAcrossRuns) {
  for (const std::string& name : ww::workload_names(kWorkloads)) {
    const auto workload = ww::get_workload(kWorkloads, name);
    const ww::SimOutput a = workload->simulate(kDual, kComm, inputs_for(8));
    const ww::SimOutput b = workload->simulate(kDual, kComm, inputs_for(8));
    EXPECT_DOUBLE_EQ(a.time_us, b.time_us) << name;
    EXPECT_EQ(a.events, b.events) << name;
  }
}

// ---- degenerate-case pinning ------------------------------------------

TEST(Pipeline1d, StackTermEqualsWavefrontClosedFormExactly) {
  // On the 1×P chain the pipeline model's stack term must reproduce the
  // wavefront solver's Tstack closed form (r4, no E/W direction) to the
  // last bit: Tstack = (Receive + Send + W) * tiles.
  const ww::WorkloadInputs in = inputs_for(8);
  const auto workload = ww::get_workload(kWorkloads, "pipeline1d");
  const ww::ModelOutput out = workload->predict(kSingle, kComm, in);

  const wc::AppParams app = ww::Pipeline1dWorkload::chain_app(in);
  const wave::topo::Grid chain = ww::Pipeline1dWorkload::chain_grid(in);
  ASSERT_EQ(chain.n(), 1);
  ASSERT_EQ(chain.m(), in.grid.size());
  const auto comm = kSingle.make_comm_model(kComm);
  const int bytes = app.message_bytes_ns(chain.n(), chain.m());
  const double w = app.wg * app.htile * (app.nx / chain.n()) *
                   (app.ny / chain.m());
  const double per_tile = comm->recv(bytes, wl::Placement::OffNode) +
                          comm->send(bytes, wl::Placement::OffNode) + w;
  const double tiles = app.tiles_per_stack();

  double stack = 0.0;
  for (const auto& [name, value] : out.extra)
    if (name == "model_stack_us") stack = value;
  EXPECT_DOUBLE_EQ(stack, per_tile * tiles);

  // And the solver evaluated directly on the chain agrees with the
  // workload wholesale (the workload *is* the degenerate wavefront).
  const wc::Solver solver(app, kSingle, kComm);
  EXPECT_DOUBLE_EQ(out.time_us, solver.evaluate(chain).iteration.total);
  EXPECT_DOUBLE_EQ(stack, solver.evaluate(chain).t_stack.total);
}

TEST(Pipeline1d, SingleRankIsPureCompute) {
  const auto workload = ww::get_workload(kWorkloads, "pipeline1d");
  const ww::WorkloadInputs in = inputs_for(1);
  const ww::ValidationReport report = workload->validate(kSingle, kComm, in);
  // One rank, one sweep: no messages at all; model and sim are both
  // exactly tiles * W.
  EXPECT_EQ(report.sim.messages, 0u);
  EXPECT_NEAR(report.model.time_us, report.sim.time_us, 1e-6);
}

TEST(Halo2d, SingleRankIsPureCompute) {
  const auto workload = ww::get_workload(kWorkloads, "halo2d");
  const ww::WorkloadInputs in = inputs_for(1);
  const ww::ValidationReport report = workload->validate(kSingle, kComm, in);
  EXPECT_EQ(report.sim.messages, 0u);
  const double cells = in.app.nx * in.app.ny * in.app.nz;
  EXPECT_NEAR(report.model.time_us, in.app.wg * cells, 1e-6);
  EXPECT_NEAR(report.sim.time_us, in.app.wg * cells, 1e-6);
}

TEST(AllreduceStorm, ModelScalesLinearlyInCount) {
  const auto workload = ww::get_workload(kWorkloads, "allreduce-storm");
  ww::WorkloadInputs in4 = inputs_for(16);
  in4.params["count"] = 4;
  ww::WorkloadInputs in8 = inputs_for(16);
  in8.params["count"] = 8;
  const double t4 = workload->predict(kDual, kComm, in4).time_us;
  const double t8 = workload->predict(kDual, kComm, in8).time_us;
  EXPECT_DOUBLE_EQ(t8, 2.0 * t4);
}

TEST(Sweep3dHybrid, MorePlanesKeepPipelineBusy) {
  // Angle-block pipelining is what keeps the z decomposition from
  // serializing: with blocks the same problem on 2 planes must not cost
  // twice the 1-plane time (which pure z serialization would).
  const auto workload = ww::get_workload(kWorkloads, "sweep3d-hybrid");
  ww::WorkloadInputs flat = inputs_for(16);
  flat.params["pz"] = 1;
  flat.params["angle_blocks"] = 4;
  ww::WorkloadInputs deep = inputs_for(16);
  deep.params["pz"] = 2;
  deep.params["angle_blocks"] = 4;
  const ww::SimOutput t_flat = workload->simulate(kSingle, kComm, flat);
  const ww::SimOutput t_deep = workload->simulate(kSingle, kComm, deep);
  // 2 planes halve each rank's work; the deep run must realize a real
  // speedup (not serialize), though less than perfect due to fill.
  EXPECT_LT(t_deep.time_us, t_flat.time_us);
  EXPECT_GT(t_deep.time_us, 0.5 * t_flat.time_us);
}

// ---- runner integration -----------------------------------------------

TEST(WorkloadAxis, SweepsRegisteredNamesAndRejectsUnknown) {
  wr::SweepGrid grid;
  grid.workloads(kCtx, {"pingpong", "halo2d"});
  const auto points = grid.points();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].workload, "pingpong");
  EXPECT_EQ(points[0].label("workload"), "pingpong");
  EXPECT_EQ(points[1].workload, "halo2d");

  wr::SweepGrid bad;
  EXPECT_THROW(bad.workloads(kCtx, {"no-such"}), wave::common::contract_error);
}

TEST(WorkloadAxis, EvaluateScenarioRoutesThroughRegistry) {
  wr::Scenario s;
  s.workload = "pingpong";
  s.engine = wr::Engine::Model;
  s.set_processors(2);
  const wr::Metrics model = wr::evaluate_scenario(kCtx, s);
  ASSERT_FALSE(model.empty());
  EXPECT_EQ(model.front().first, "model_us");

  s.engine = wr::Engine::Simulation;
  const wr::Metrics sim = wr::evaluate_scenario(kCtx, s);
  EXPECT_EQ(sim.front().first, "sim_us");

  // The default workload keeps the original wavefront metric names (the
  // pinned-record fixtures depend on them).
  wr::Scenario wf;
  wf.app = ww::WorkloadInputs::default_app();
  wf.engine = wr::Engine::Model;
  wf.set_processors(4);
  EXPECT_EQ(wr::evaluate_scenario(kCtx, wf).front().first, "model_iter_us");
}

TEST(WorkloadAxis, ApplyWorkloadCliSetsTheBase) {
  const char* argv[] = {"prog", "--workload=halo2d"};
  const wave::common::Cli cli(2, argv);
  wr::Scenario base;
  wr::apply_workload_cli(cli, kCtx, base);
  EXPECT_EQ(base.workload, "halo2d");

  const char* none[] = {"prog"};
  wr::Scenario untouched;
  wr::apply_workload_cli(wave::common::Cli(1, none), kCtx, untouched);
  EXPECT_EQ(untouched.workload, "wavefront");
}

TEST(WorkloadAxis, ModelVsSimMetricsReportTolerance) {
  wr::Scenario s;
  s.workload = "pingpong";
  s.set_processors(2);
  const wr::Metrics m = wr::workload_model_vs_sim_metrics(kCtx, s);
  double within = -1.0, err = -1.0;
  for (const auto& [name, value] : m) {
    if (name == "within_tol") within = value;
    if (name == "err_pct") err = value;
  }
  EXPECT_EQ(within, 1.0);
  EXPECT_NEAR(err, 0.0, 1e-6);
}

TEST(WorkloadMatrix, RecordsByteIdenticalAcrossThreadCounts) {
  const wr::SweepGrid grid = wr::workload_matrix_grid(kCtx, false);
  const auto points = grid.points();
  ASSERT_GE(points.size(), 100u);
  const auto serial =
      wr::BatchRunner(kCtx, wr::BatchRunner::Options(1))
          .run(points, [](const wr::Scenario& s) {
            return wr::workload_metrics(kCtx, s);
          });
  const auto parallel =
      wr::BatchRunner(kCtx, wr::BatchRunner::Options(4))
          .run(points, [](const wr::Scenario& s) {
            return wr::workload_metrics(kCtx, s);
          });
  EXPECT_EQ(wr::to_csv(serial), wr::to_csv(parallel));
}

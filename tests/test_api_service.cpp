// The memoizing EvalService: cache determinism (hits are bit-identical
// with the first evaluation), the canonical-key identity, the capacity
// bound, error handling, and thread-safety under concurrent mixed
// queries.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/machine.h"
#include "runner/runner.h"
#include "wave/wave.h"

namespace {

/// Bit-exact Result comparison: every double compared by memcmp, so an
/// "equal-looking" recomputation with different rounding would fail.
void expect_bit_identical(const wave::Result& a, const wave::Result& b) {
  auto same_bits = [](double x, double y) {
    return std::memcmp(&x, &y, sizeof x) == 0;
  };
  EXPECT_TRUE(same_bits(a.time_us, b.time_us));
  EXPECT_TRUE(same_bits(a.comm_us, b.comm_us));
  EXPECT_TRUE(same_bits(a.model_us, b.model_us));
  EXPECT_TRUE(same_bits(a.sim_us, b.sim_us));
  EXPECT_TRUE(same_bits(a.divergence_pct, b.divergence_pct));
  ASSERT_EQ(a.terms.size(), b.terms.size());
  for (std::size_t i = 0; i < a.terms.size(); ++i) {
    EXPECT_EQ(a.terms[i].first, b.terms[i].first);
    EXPECT_TRUE(same_bits(a.terms[i].second, b.terms[i].second))
        << a.terms[i].first;
  }
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.machine, b.machine);
  EXPECT_EQ(a.comm_model, b.comm_model);
}

}  // namespace

TEST(EvalService, HitReturnsBitIdenticalResultAndCounts) {
  const wave::Context ctx;
  wave::EvalService service(ctx);
  const wave::Query q = ctx.query().machine("xt4-dual").processors(256);

  const auto first = service.evaluate(q);
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  auto stats = service.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.size, 1u);

  const auto second = service.evaluate(q);
  ASSERT_TRUE(second.ok());
  expect_bit_identical(first.value(), second.value());
  stats = service.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.size, 1u);
}

TEST(EvalService, SimulationResultsAreCachedToo) {
  const wave::Context ctx;
  wave::EvalService service(ctx);
  const wave::Query q = ctx.query()
                            .machine("xt4-single")
                            .processors(16)
                            .engine(wave::Engine::Simulation);
  const auto a = service.evaluate(q);
  const auto b = service.evaluate(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  expect_bit_identical(a.value(), b.value());
  EXPECT_EQ(service.stats().hits, 1u);
}

TEST(EvalService, DistinctQueriesHaveDistinctKeys) {
  const wave::Context ctx;
  wave::EvalService service(ctx);
  const wave::Query base = ctx.query().machine("xt4-dual").processors(256);
  // Every axis of the canonical identity separates.
  const std::vector<wave::Query> variants = {
      ctx.query().machine("xt4-single").processors(256),
      ctx.query().machine("xt4-dual").processors(512),
      ctx.query().machine("xt4-dual").processors(256).comm_model("loggps"),
      ctx.query().machine("xt4-dual").processors(256).workload("pingpong"),
      ctx.query().machine("xt4-dual").processors(256).engine(
          wave::Engine::Simulation),
      ctx.query().machine("xt4-dual").processors(256).param("htile", 2.0),
      ctx.query().machine("xt4-dual").processors(256).app("sweep3d-20m"),
      ctx.query().machine("xt4-dual").processors(256).iterations(2),
  };
  const std::string base_key = service.canonical_key(base);
  for (const wave::Query& q : variants)
    EXPECT_NE(service.canonical_key(q), base_key);
  // And the key is a pure function of the query.
  EXPECT_EQ(service.canonical_key(base), base_key);
}

TEST(EvalService, CapacityBoundResetsTheGeneration) {
  const wave::Context ctx;
  wave::EvalService service(ctx, wave::EvalService::Options(4));
  for (int p = 1; p <= 6; ++p) {
    const auto r = service.evaluate(ctx.query().processors(p));
    ASSERT_TRUE(r.ok());
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.misses, 6u);
  EXPECT_EQ(stats.resets, 1u);      // 4 cached -> reset -> 2 cached
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.capacity, 4u);
}

TEST(EvalService, ErrorsAreReportedAndNeverCached) {
  wave::Context ctx;
  wave::EvalService service(ctx);
  const wave::Query bad = ctx.query().workload("not-registered");
  EXPECT_FALSE(service.evaluate(bad).ok());
  EXPECT_FALSE(service.evaluate(bad).ok());
  const auto stats = service.stats();
  EXPECT_EQ(stats.errors, 2u);
  EXPECT_EQ(stats.size, 0u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(EvalService, ClearDropsEntriesButKeepsCounters) {
  const wave::Context ctx;
  wave::EvalService service(ctx);
  ASSERT_TRUE(service.evaluate(ctx.query().processors(64)).ok());
  ASSERT_TRUE(service.evaluate(ctx.query().processors(64)).ok());
  service.clear();
  auto stats = service.stats();
  EXPECT_EQ(stats.size, 0u);
  EXPECT_EQ(stats.hits, 1u);
  // The next identical query misses again and repopulates.
  ASSERT_TRUE(service.evaluate(ctx.query().processors(64)).ok());
  EXPECT_EQ(service.stats().misses, 2u);
}

TEST(EvalService, ConcurrentMixedQueriesAgreeWithSerialReference) {
  const wave::Context ctx;

  // The mixed query set: analytic points at several depths plus a couple
  // of small DES points (long enough to hold the evaluation slot while
  // other threads hit and miss around it).
  std::vector<wave::Query> queries;
  for (int p : {16, 64, 256, 1024})
    queries.push_back(ctx.query().machine("xt4-dual").processors(p));
  queries.push_back(ctx.query().machine("xt4-single").processors(16).engine(
      wave::Engine::Simulation));
  queries.push_back(ctx.query().workload("pingpong").processors(2).engine(
      wave::Engine::Simulation));

  // Serial reference results (its own service; determinism across service
  // instances is part of the contract).
  wave::EvalService reference(ctx);
  std::vector<wave::Result> expected;
  for (const wave::Query& q : queries) {
    auto r = reference.evaluate(q);
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    expected.push_back(r.value());
  }

  wave::EvalService service(ctx);
  constexpr int kThreads = 8;
  constexpr int kRounds = 25;
  std::vector<std::vector<wave::Result>> got(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        // Offset the start so threads collide on different keys.
        for (std::size_t i = 0; i < queries.size(); ++i) {
          const std::size_t at =
              (i + static_cast<std::size_t>(t)) % queries.size();
          auto r = service.evaluate(queries[at]);
          if (r.ok() && round == 0) got[t].push_back(r.value());
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  // Every thread's first pass observed exactly the serial answers.
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(got[t].size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const std::size_t at =
          (i + static_cast<std::size_t>(t)) % queries.size();
      expect_bit_identical(got[t][i], expected[at]);
    }
  }

  const auto stats = service.stats();
  EXPECT_EQ(stats.size, queries.size());
  EXPECT_EQ(stats.errors, 0u);
  // Racing threads may each evaluate a key before the first store lands,
  // so misses can exceed the distinct-query count — but every remaining
  // call must have hit.
  EXPECT_GE(stats.misses, queries.size());
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kRounds * queries.size());
}

TEST(EvalServiceWarm, WarmPopulatesEveryStudyPoint) {
  const wave::Context ctx;
  wave::EvalService service(ctx);
  const auto added = service.warm(ctx.study()
                                      .machines({"xt4-dual", "xt4-single"})
                                      .comm_models({"loggp", "loggps"})
                                      .processors({64, 256, 1024}));
  ASSERT_TRUE(added.ok()) << added.status().to_string();
  EXPECT_EQ(added.value(), 12u);
  EXPECT_EQ(service.stats().size, 12u);

  // Every point of the grid now hits.
  for (const char* machine : {"xt4-dual", "xt4-single"})
    for (const char* comm : {"loggp", "loggps"})
      for (int p : {64, 256, 1024}) {
        const auto r = service.evaluate(ctx.query()
                                            .machine(machine)
                                            .comm_model(comm)
                                            .processors(p));
        ASSERT_TRUE(r.ok());
      }
  EXPECT_EQ(service.stats().hits, 12u);
  EXPECT_EQ(service.stats().misses, 12u);  // all from the warm itself
}

TEST(EvalServiceWarm, WarmedResultsAreBitIdenticalWithColdEvaluation) {
  // The warm path runs analytic points through the batch solver; the
  // cached Results must still be bit-identical with what a cold
  // evaluate() computes through the scalar pipeline.
  const wave::Context ctx;
  wave::EvalService warmed(ctx);
  ASSERT_TRUE(warmed
                  .warm(ctx.study()
                            .app("sweep3d-20m")
                            .machines({"xt4-dual", "sp2"})
                            .processors({256, 4096})
                            .values("htile", {1.0, 2.0}))
                  .ok());

  wave::EvalService cold(ctx);
  for (const char* machine : {"xt4-dual", "sp2"})
    for (int p : {256, 4096})
      for (double h : {1.0, 2.0}) {
        const wave::Query q = ctx.query()
                                  .app("sweep3d-20m")
                                  .machine(machine)
                                  .processors(p)
                                  .param("htile", h);
        const auto a = warmed.evaluate(q);
        const auto b = cold.evaluate(q);
        ASSERT_TRUE(a.ok());
        ASSERT_TRUE(b.ok());
        expect_bit_identical(a.value(), b.value());
      }
  // The warmed service never evaluated after the warm.
  EXPECT_EQ(warmed.stats().hits, 8u);
}

TEST(EvalServiceWarm, WarmSkipsAlreadyCachedAndDuplicatePoints) {
  const wave::Context ctx;
  wave::EvalService service(ctx);
  ASSERT_TRUE(
      service.evaluate(ctx.query().machine("xt4-dual").processors(64)).ok());
  // 64 is cached already; the duplicated 256 collapses to one point.
  const auto added =
      service.warm(ctx.study().machine("xt4-dual").processors({64, 256, 256}));
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(added.value(), 1u);
  EXPECT_EQ(service.stats().size, 2u);
}

TEST(EvalServiceWarm, MixedEngineAndValidateStudiesWarmToo) {
  // Non-batchable points (DES engine, validate mode) take the scalar
  // evaluators inside warm; they must land in the cache all the same.
  const wave::Context ctx;
  wave::EvalService service(ctx);
  const auto added =
      service.warm(ctx.study().machine("xt4-single").processors({4, 16}).engines(
          {wave::Engine::Model, wave::Engine::Simulation}));
  ASSERT_TRUE(added.ok()) << added.status().to_string();
  EXPECT_EQ(added.value(), 4u);
  const auto sim = service.evaluate(ctx.query()
                                        .machine("xt4-single")
                                        .processors(16)
                                        .engine(wave::Engine::Simulation));
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ(service.stats().hits, 1u);

  wave::EvalService validating(ctx);
  const auto v = validating.warm(
      ctx.study().machine("xt4-single").workload("pingpong").processors({2}).validate());
  ASSERT_TRUE(v.ok()) << v.status().to_string();
  EXPECT_EQ(v.value(), 1u);
  const auto hit = validating.evaluate(ctx.query()
                                           .machine("xt4-single")
                                           .workload("pingpong")
                                           .processors(2)
                                           .validate());
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.value().validated);
  EXPECT_EQ(validating.stats().hits, 1u);
}

TEST(EvalServiceWarm, BadAxisValueFailsTheWholeWarm) {
  const wave::Context ctx;
  wave::EvalService service(ctx);
  const auto added = service.warm(
      ctx.study().machines({"xt4-dual", "no-such-machine"}).processors({64}));
  ASSERT_FALSE(added.ok());
  EXPECT_EQ(added.status().code(), wave::StatusCode::kNotFound);
  // Resolution happens before evaluation: nothing was cached.
  EXPECT_EQ(service.stats().size, 0u);
  EXPECT_EQ(service.stats().errors, 1u);
}

TEST(EvalService, PinnedRecordEquivalenceThroughTheFacade) {
  // The facade must answer exactly what the pre-facade pipeline answers:
  // pick a point of the pinned runner_scaling grid and compare the
  // service's cached Result against the direct evaluator.
  const wave::Context ctx;
  wave::runner::Scenario s;
  s.app = wave::workloads::WorkloadInputs::default_app();
  s.machine = wave::core::MachineConfig::xt4_dual_core();
  s.set_processors(256);
  const wave::runner::Metrics direct =
      wave::runner::evaluate_scenario(ctx, s);

  wave::EvalService service(ctx);
  const auto r =
      service.evaluate(ctx.query().machine("xt4-dual").processors(256));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().terms.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(r.value().terms[i].first, direct[i].first);
    EXPECT_EQ(r.value().terms[i].second, direct[i].second);
  }
}

TEST(EvalServiceSharded, ShardedHitsAreBitIdenticalAcrossShardCounts) {
  // The shard count is a concurrency knob, never a semantic one: the same
  // query mix against 1 and 8 shards yields bit-identical Results and the
  // same aggregate hit/miss accounting.
  const wave::Context ctx;
  wave::EvalService one(ctx, wave::EvalService::Options(1024, 1));
  wave::EvalService eight(ctx, wave::EvalService::Options(1024, 8));
  EXPECT_EQ(one.stats().shards, 1u);
  EXPECT_EQ(eight.stats().shards, 8u);
  for (int round = 0; round < 2; ++round) {
    for (int p : {16, 64, 256, 1024}) {
      const wave::Query q = ctx.query().machine("xt4-dual").processors(p);
      const auto a = one.evaluate(q);
      const auto b = eight.evaluate(q);
      ASSERT_TRUE(a.ok() && b.ok());
      expect_bit_identical(a.value(), b.value());
    }
  }
  EXPECT_EQ(one.stats().hits, eight.stats().hits);
  EXPECT_EQ(one.stats().misses, eight.stats().misses);
  EXPECT_EQ(one.stats().size, eight.stats().size);
}

TEST(EvalServiceSharded, StatsAggregateConsistentlyUnderConcurrentLoad) {
  // N threads hammer a sharded service with a mix of repeated and
  // distinct queries; afterwards the aggregated counters must balance
  // exactly: every evaluate() was a hit, a miss or an error, and the
  // cache holds at most what the misses stored.
  const wave::Context ctx;
  wave::EvalService service(ctx, wave::EvalService::Options(4096, 4));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&ctx, &service, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // 8 distinct scenarios + 1 error query, interleaved differently
        // per thread so shards see genuinely concurrent mixed traffic.
        const int slot = (i + t) % 9;
        if (slot == 8) {
          (void)service.evaluate(ctx.query().machine("no-such-machine"));
        } else {
          (void)service.evaluate(
              ctx.query().machine("xt4-dual").processors(4 << slot));
        }
      }
    });
  for (std::thread& t : threads) t.join();

  const auto stats = service.stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.errors,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats.errors, (static_cast<std::uint64_t>(kThreads) * kPerThread) / 9);
  // Concurrent first evaluations may race to store the same scenario
  // (both count as misses, one wins the slot), so size <= misses, and at
  // least the 8 distinct scenarios are resident.
  EXPECT_LE(stats.size, static_cast<std::size_t>(stats.misses));
  EXPECT_EQ(stats.size, 8u);
  EXPECT_EQ(stats.resets, 0u);
}

TEST(EvalServiceSharded, ExportImportRoundTripServesBitIdenticalHits) {
  const wave::Context ctx;
  wave::EvalService source(ctx, wave::EvalService::Options(1024, 4));
  for (int p : {16, 64, 256})
    ASSERT_TRUE(
        source.evaluate(ctx.query().machine("xt4-dual").processors(p)).ok());
  const auto exported = source.export_cache();
  ASSERT_EQ(exported.size(), 3u);
  // Deterministic order: sorted by canonical key, whatever the shard layout.
  for (std::size_t i = 1; i < exported.size(); ++i)
    EXPECT_LT(exported[i - 1].key, exported[i].key);

  wave::EvalService restored(ctx, wave::EvalService::Options(1024, 2));
  EXPECT_EQ(restored.import_cache(exported), 3u);
  EXPECT_EQ(restored.stats().imported, 3u);
  EXPECT_EQ(restored.stats().misses, 0u);
  for (int p : {16, 64, 256}) {
    const wave::Query q = ctx.query().machine("xt4-dual").processors(p);
    const auto cold = source.evaluate(q);
    const auto warm = restored.evaluate(q);
    ASSERT_TRUE(cold.ok() && warm.ok());
    expect_bit_identical(cold.value(), warm.value());
  }
  // All three were hits: nothing was re-evaluated after the import.
  EXPECT_EQ(restored.stats().hits, 3u);
  EXPECT_EQ(restored.stats().misses, 0u);
  // Importing the same entries again is a no-op (live entries win).
  EXPECT_EQ(restored.import_cache(exported), 0u);
}

// Tests for the extension modules: the Hoisie-style baseline model, the
// design-space scans, and the optional synchronization terms.
#include <gtest/gtest.h>

#include "common/contracts.h"
#include "core/baseline.h"
#include "core/benchmarks.h"
#include "core/design_space.h"
#include "core/solver.h"
#include "loggp/registry.h"

namespace wc = wave::core;
namespace wb = wave::core::benchmarks;

namespace {
const wc::MachineConfig kSingle = wc::MachineConfig::xt4_single_core();
const wc::MachineConfig kDual = wc::MachineConfig::xt4_dual_core();
// One registry for the whole file: these tests exercise the solver and the
// design-space scans, not registry scoping.
const wave::loggp::CommModelRegistry kReg;
}  // namespace

TEST(Baseline, SingleProcessorMatchesSerialWork) {
  // With one processor there is no fill and no communication: baseline
  // and plug-and-play must agree exactly.
  const wc::AppParams app = wb::chimaera();
  const auto base = wc::hoisie_baseline(app, kSingle, kReg, 1);
  const auto model = wc::Solver(app, kSingle, kReg).evaluate(1);
  EXPECT_NEAR(base.iteration, model.iteration.total, 1e-6);
}

TEST(Baseline, ChargesEverySweepAFullFill) {
  // The naive reuse charges nsweeps fills; the plug-and-play model
  // charges only the nfull/ndiag precedence structure, so for a pipelined
  // code (Sweep3D: 8 sweeps, nfull 2, ndiag 2) the baseline must predict
  // a strictly larger iteration.
  wb::Sweep3dConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 256;
  const wc::AppParams app = wb::sweep3d(cfg);
  const auto base = wc::hoisie_baseline(app, kDual, kReg, 1024);
  const auto model = wc::Solver(app, kDual, kReg).evaluate(1024);
  EXPECT_GT(base.iteration, model.iteration.total);
  // The excess is roughly (nsweeps - nfull - ndiag) extra fills.
  EXPECT_GT(base.iteration - model.iteration.total,
            2.0 * base.fill_time);
}

TEST(Baseline, SweepTimeDecomposition) {
  const wc::AppParams app = wb::lu();
  const auto base = wc::hoisie_baseline(app, kSingle, kReg,
                                        wave::topo::Grid(9, 9));
  EXPECT_NEAR(base.sweep_time,
              base.fill_time + app.tiles_per_stack() * base.step_cost, 1e-9);
  EXPECT_NEAR(base.iteration,
              2.0 * base.sweep_time + base.nonwavefront, 1e-9);
}

TEST(Baseline, RejectsBadInput) {
  EXPECT_THROW(wc::hoisie_baseline(wb::lu(), kSingle, kReg, 0),
               wave::common::contract_error);
}

TEST(DesignSpace, HtileScanFindsPaperBand) {
  const auto scan = wc::scan_htile(wb::chimaera(), kDual, kReg, 16384);
  EXPECT_GE(scan.best_htile, 2.0);
  EXPECT_LE(scan.best_htile, 5.0);
  EXPECT_GT(scan.improvement_vs_unit, 0.0);
  EXPECT_EQ(scan.points.size(), 10u);
}

TEST(DesignSpace, HtileScanSkipsOversizedTiles) {
  wb::Sweep3dConfig cfg;
  cfg.nx = cfg.ny = 64;
  cfg.nz = 4;  // stack of four cells: candidates above 4 are invalid
  const double candidates[] = {1.0, 2.0, 4.0, 8.0, 16.0};
  const auto scan =
      wc::scan_htile(wb::sweep3d(cfg), kSingle, kReg, 64, candidates);
  EXPECT_EQ(scan.points.size(), 3u);  // 1, 2, 4
  for (const auto& p : scan.points) EXPECT_LE(p.htile, 4.0);
}

TEST(DesignSpace, HtileScanAlwaysIncludesUnitHeight) {
  const double candidates[] = {4.0};
  const auto scan =
      wc::scan_htile(wb::chimaera(), kDual, kReg, 4096, candidates);
  ASSERT_EQ(scan.points.size(), 2u);
  EXPECT_DOUBLE_EQ(scan.points.front().htile, 1.0);
}

TEST(DesignSpace, DecompositionsSortedAndComplete) {
  const auto points = wc::scan_decompositions(wb::chimaera(), kDual, kReg, 64);
  // 64 = 64x1, 32x2, 16x4, 8x8: four factorizations with n >= m.
  EXPECT_EQ(points.size(), 4u);
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_LE(points[i - 1].iteration, points[i].iteration);
  for (const auto& p : points) EXPECT_EQ(p.grid.size(), 64);
}

TEST(DesignSpace, BalancedDecompositionsWin) {
  // Near-balanced grids minimize fill plus message volume (mildly
  // elongated shapes can edge out the square because Tdiagfill follows
  // the shorter m side, but never by much); the degenerate 1-row layout
  // loses badly once communication matters.
  const auto points = wc::scan_decompositions(wb::chimaera(), kDual, kReg, 4096);
  const auto& best = points.front().grid;
  EXPECT_LE(best.n() / best.m(), 4);  // best is near-balanced
  EXPECT_EQ(points.back().grid.m(), 1);  // worst is the 4096x1 strip
  EXPECT_GT(points.back().iteration, 1.5 * points.front().iteration);
  // The square is within a few percent of whatever wins.
  for (const auto& p : points) {
    if (p.grid.n() == 64 && p.grid.m() == 64) {
      EXPECT_LT(p.iteration, 1.05 * points.front().iteration);
    }
  }
}

TEST(DesignSpace, ProcessorsForDeadline) {
  const wc::AppParams app = wb::chimaera();
  const wc::Solver solver(app, kDual, kReg);
  // Find the smallest power of two meeting a deadline between the P=64
  // and P=4096 time steps.
  const double t64 =
      wave::common::usec_to_sec(solver.evaluate(64).timestep());
  const double t4096 =
      wave::common::usec_to_sec(solver.evaluate(4096).timestep());
  const double target = 0.5 * (t64 + t4096);
  const int p = wc::processors_for_deadline(app, kDual, kReg, target, 65536);
  EXPECT_GT(p, 64);
  EXPECT_LE(p, 4096);
  EXPECT_LE(wave::common::usec_to_sec(solver.evaluate(p).timestep()),
            target);
}

TEST(DesignSpace, DeadlineFallsBackToMax) {
  EXPECT_EQ(wc::processors_for_deadline(wb::chimaera(), kDual, kReg,
                                        /*timestep_seconds=*/1e-9, 1024),
            1024);
}

TEST(SyncTerms, NegligibleOnXt4SignificantOnSp2) {
  // §4.2: back-propagation terms matter on the SP/2, not on the XT4.
  const wc::AppParams app = wb::sweep3d_20m();
  auto share = [&](wc::MachineConfig machine) {
    wc::MachineConfig off = machine;
    off.synchronization_terms = false;
    wc::MachineConfig on = machine;
    on.synchronization_terms = true;
    const double t0 = wc::Solver(app, off, kReg).evaluate(4096).iteration.total;
    const double t1 = wc::Solver(app, on, kReg).evaluate(4096).iteration.total;
    return (t1 - t0) / t1;
  };
  const double xt4 = share(wc::MachineConfig::xt4_single_core());
  const double sp2 = share(wc::MachineConfig::sp2_single_core());
  EXPECT_LT(xt4, 0.005);  // well under half a percent
  EXPECT_GT(sp2, 10.0 * xt4);
}

TEST(SyncTerms, AddPositiveFillTime) {
  wc::MachineConfig with = kSingle;
  with.synchronization_terms = true;
  const auto grid = wave::topo::Grid(16, 16);
  const auto base = wc::Solver(wb::chimaera(), kSingle, kReg).evaluate(grid);
  const auto sync = wc::Solver(wb::chimaera(), with, kReg).evaluate(grid);
  // Tdiag gains (m-1)L, Tfull gains (m-1+n-2)L.
  const double l = kSingle.loggp.off.L;
  EXPECT_NEAR(sync.t_diagfill.total - base.t_diagfill.total, 15.0 * l, 1e-9);
  EXPECT_NEAR(sync.t_fullfill.total - base.t_fullfill.total, 29.0 * l, 1e-9);
}

// The stable `wave::` facade: Context scoping, the fluent Query builder,
// the Study round-trip against the pre-facade runner, and the error
// contract at the API boundary.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/machine.h"
#include "core/solver.h"
#include "loggp/backends.h"
#include "loggp/registry.h"
#include "runner/runner.h"
#include "wave/wave.h"
#include "workloads/registry.h"
#include "workloads/workload.h"

namespace ww = wave::workloads;

namespace {

/// A minimal registrable workload: constant model and sim answers.
class StubWorkload : public ww::Workload {
 public:
  explicit StubWorkload(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  const std::string& description() const override {
    static const std::string d = "constant-answer context-isolation stub";
    return d;
  }
  double tolerance() const override { return 1.0; }
  ww::ModelOutput predict(const wave::core::MachineConfig&,
                          const wave::loggp::CommModel&,
                          const ww::WorkloadInputs&) const override {
    return {42.0, 21.0, {{"model_stub_term", 7.0}}};
  }
  ww::SimOutput simulate(const wave::core::MachineConfig&,
                         const wave::sim::ProtocolOptions&,
                         const ww::WorkloadInputs&) const override {
    ww::SimOutput out;
    out.time_us = 42.0;
    return out;
  }

 private:
  std::string name_;
};

}  // namespace

// ---- Context scoping ---------------------------------------------------

TEST(ApiContext, BuiltinsArePreRegistered) {
  const wave::Context ctx;
  EXPECT_TRUE(ctx.has_workload("wavefront"));
  EXPECT_TRUE(ctx.has_workload("sweep3d-hybrid"));
  EXPECT_TRUE(ctx.has_comm_model("loggp"));
  EXPECT_TRUE(ctx.has_comm_model("loggps"));
  EXPECT_TRUE(ctx.has_comm_model("contention"));
  EXPECT_TRUE(ctx.has_machine("xt4-dual"));
  EXPECT_TRUE(ctx.has_machine("xt4-single"));
  EXPECT_TRUE(ctx.has_machine("sp2"));
  EXPECT_EQ(ctx.workloads().size(), 6u);
  EXPECT_EQ(ctx.comm_models().size(), 3u);
}

TEST(ApiContext, TwoContextsDoNotShareRegistrations) {
  wave::Context a;
  wave::Context b;
  ASSERT_TRUE(
      a.register_workload(std::make_shared<StubWorkload>("only-in-a"))
          .is_ok());
  EXPECT_TRUE(a.has_workload("only-in-a"));
  EXPECT_FALSE(b.has_workload("only-in-a"));
  // Registration is context-local: a fresh registry does not see it either.
  EXPECT_FALSE(ww::WorkloadRegistry().contains("only-in-a"));
  // And b can reuse the name for a different workload without conflict.
  EXPECT_TRUE(
      b.register_workload(std::make_shared<StubWorkload>("only-in-a"))
          .is_ok());
}

TEST(ApiContext, DuplicateRegistrationIsAStatusNotAnException) {
  wave::Context ctx;
  const wave::Status dup =
      ctx.register_workload(std::make_shared<StubWorkload>("wavefront"));
  EXPECT_FALSE(dup.is_ok());
  EXPECT_EQ(dup.code(), wave::StatusCode::kAlreadyExists);
  EXPECT_NE(dup.message().find("wavefront"), std::string::npos);
}

TEST(ApiContext, ScopedCommModelIsEvaluatable) {
  // A custom backend registered in one context drives both engines there
  // and stays invisible to a sibling context.
  wave::Context a;
  wave::Context b;
  a.comm_model_registry().add(
      "test-loggp-clone", "LogGP clone registered in context a",
      [](const wave::loggp::MachineParams& p,
         const wave::loggp::CommModelOptions&) {
        return std::make_unique<wave::loggp::LogGpModel>(p);
      });
  EXPECT_TRUE(a.has_comm_model("test-loggp-clone"));
  EXPECT_FALSE(b.has_comm_model("test-loggp-clone"));

  const auto with = a.query()
                        .comm_model("test-loggp-clone")
                        .processors(64)
                        .run();
  const auto loggp = a.query().comm_model("loggp").processors(64).run();
  ASSERT_TRUE(with.ok()) << with.status().to_string();
  ASSERT_TRUE(loggp.ok());
  EXPECT_EQ(with.value().time_us, loggp.value().time_us);

  const auto elsewhere =
      b.query().comm_model("test-loggp-clone").processors(64).run();
  ASSERT_FALSE(elsewhere.ok());
  EXPECT_EQ(elsewhere.status().code(), wave::StatusCode::kNotFound);

  // The DES path resolves the protocol through the same scoped registry.
  const auto sim = a.query()
                       .comm_model("test-loggp-clone")
                       .processors(16)
                       .engine(wave::Engine::Simulation)
                       .run();
  ASSERT_TRUE(sim.ok()) << sim.status().to_string();
  EXPECT_GT(sim.value().time_us, 0.0);
}

TEST(ApiContext, MachineCatalogResolvesNamesAndPaths) {
  wave::Context ctx;
  ASSERT_TRUE(ctx.add_machine_dir(WAVE_MACHINES_DIR).is_ok());
  EXPECT_TRUE(ctx.has_machine("quadcore-shared-bus"));
  EXPECT_TRUE(ctx.has_machine("fatnode-loggps"));

  // By name (a discovered config) and by explicit path: same machine.
  const wave::core::MachineConfig by_name =
      ctx.resolve_machine("fatnode-loggps");
  const wave::core::MachineConfig by_path = ctx.resolve_machine(
      std::string(WAVE_MACHINES_DIR) + "/fatnode-loggps.cfg");
  EXPECT_EQ(by_name, by_path);

  // The shipped xt4-dual.cfg shadows (and equals) the preset.
  EXPECT_EQ(ctx.resolve_machine("xt4-dual"),
            wave::core::MachineConfig::xt4_dual_core());
}

// ---- Query -------------------------------------------------------------

TEST(ApiQuery, ModelQueryMatchesDirectSolverEvaluation) {
  const wave::Context ctx;
  const auto r = ctx.query().machine("xt4-dual").processors(256).run();
  ASSERT_TRUE(r.ok()) << r.status().to_string();

  const wave::core::Solver solver(ww::WorkloadInputs::default_app(),
                                  wave::core::MachineConfig::xt4_dual_core(),
                                  ctx.comm_model_registry());
  const wave::core::ModelResult direct = solver.evaluate(256);
  EXPECT_EQ(r.value().time_us, direct.iteration.total);
  EXPECT_EQ(r.value().comm_us, direct.iteration.comm);
  EXPECT_EQ(r.value().machine, "xt4-dual");
  EXPECT_EQ(r.value().comm_model, "loggp");
  EXPECT_EQ(r.value().processors, 256);
  EXPECT_EQ(r.value().term_or("model_iter_us", -1.0),
            direct.iteration.total);
}

TEST(ApiQuery, SimulationEngineAndTermBreakdown) {
  const wave::Context ctx;
  const auto r = ctx.query()
                     .machine("xt4-single")
                     .processors(16)
                     .engine(wave::Engine::Simulation)
                     .run();
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_GT(r.value().time_us, 0.0);
  EXPECT_GT(r.value().term_or("sim_events", 0.0), 0.0);
  EXPECT_GT(r.value().term_or("sim_messages", 0.0), 0.0);
}

TEST(ApiQuery, ValidatePopulatesDivergence) {
  const wave::Context ctx;
  const auto r = ctx.query()
                     .machine("xt4-single")
                     .workload("pingpong")
                     .validate()
                     .run();
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_TRUE(r.value().validated);
  EXPECT_GT(r.value().model_us, 0.0);
  EXPECT_GT(r.value().sim_us, 0.0);
  // The pingpong contract is exact: model == fabric to ~1e-6.
  EXPECT_TRUE(r.value().within_tolerance);
  EXPECT_LT(r.value().divergence_pct, 1e-4);
}

TEST(ApiQuery, ErrorsAreStatusesNotExceptions) {
  const wave::Context ctx;
  const auto unknown_workload =
      ctx.query().workload("no-such-workload").run();
  ASSERT_FALSE(unknown_workload.ok());
  EXPECT_EQ(unknown_workload.status().code(), wave::StatusCode::kNotFound);
  // The message carries the registered vocabulary.
  EXPECT_NE(unknown_workload.status().message().find("wavefront"),
            std::string::npos);

  const auto unknown_machine = ctx.query().machine("no-such-machine").run();
  ASSERT_FALSE(unknown_machine.ok());
  EXPECT_EQ(unknown_machine.status().code(), wave::StatusCode::kNotFound);

  const auto unknown_comm = ctx.query().comm_model("no-such-model").run();
  ASSERT_FALSE(unknown_comm.ok());
  EXPECT_EQ(unknown_comm.status().code(), wave::StatusCode::kNotFound);

  const auto bad_domain = ctx.query().processors(0).run();
  ASSERT_FALSE(bad_domain.ok());
  EXPECT_EQ(bad_domain.status().code(), wave::StatusCode::kInvalidArgument);

  const auto unbound = wave::Query().run();
  ASSERT_FALSE(unbound.ok());
  EXPECT_EQ(unbound.status().code(), wave::StatusCode::kFailedPrecondition);
}

// ---- Study round-trip against the pre-facade runner --------------------

TEST(ApiStudy, CsvIsByteIdenticalWithHandBuiltSweep) {
  const wave::Context ctx;

  // The facade study…
  const auto study = ctx.study()
                         .machines({"xt4-dual", "xt4-single"})
                         .comm_models({"loggp", "loggps"})
                         .processors({16, 64, 256})
                         .engines({wave::Engine::Model})
                         .run();
  ASSERT_TRUE(study.ok()) << study.status().to_string();
  ASSERT_EQ(study.value().rows.size(), 12u);

  // …and the same sweep built the pre-facade way.
  wave::runner::SweepGrid grid;
  grid.base().app = ww::WorkloadInputs::default_app();
  grid.machines({{"xt4-dual", wave::core::MachineConfig::xt4_dual_core()},
                 {"xt4-single", wave::core::MachineConfig::xt4_single_core()}});
  grid.comm_models(ctx, {"loggp", "loggps"});
  grid.processors({16, 64, 256});
  grid.engines({wave::runner::Engine::Model});
  const auto records =
      wave::runner::BatchRunner(ctx, wave::runner::BatchRunner::Options(0))
          .run(grid);

  EXPECT_EQ(study.value().csv(), wave::runner::to_csv(records));
}

TEST(ApiStudy, MixedEnginesAndWorkloadAxisRoundTrip) {
  const wave::Context ctx;
  const auto study =
      ctx.study()
          .machine("xt4-single")
          .workloads({"pingpong", "allreduce-storm"})
          .processors({4})
          .engines({wave::Engine::Model, wave::Engine::Simulation})
          .run();
  ASSERT_TRUE(study.ok()) << study.status().to_string();

  wave::runner::SweepGrid grid;
  grid.base().app = ww::WorkloadInputs::default_app();
  grid.base().machine = wave::core::MachineConfig::xt4_single_core();
  grid.workloads(ctx, {"pingpong", "allreduce-storm"});
  grid.processors({4});
  grid.engines(
      {wave::runner::Engine::Model, wave::runner::Engine::Simulation});
  const auto records =
      wave::runner::BatchRunner(ctx, wave::runner::BatchRunner::Options(0))
          .run(grid);

  EXPECT_EQ(study.value().csv(), wave::runner::to_csv(records));
}

TEST(ApiStudy, UnknownAxisNameFailsAsStatus) {
  const wave::Context ctx;
  const auto study = ctx.study().workloads({"wavefront", "typo"}).run();
  ASSERT_FALSE(study.ok());
  EXPECT_EQ(study.status().code(), wave::StatusCode::kNotFound);
}

// ---- SweepGrid::size() (satellite) -------------------------------------

TEST(SweepGridSize, UnfilteredSizeIsTheAxisProduct) {
  wave::runner::SweepGrid grid;
  grid.processors({1, 2, 4, 8});
  grid.values("x", {0.5, 1.0, 2.0});
  EXPECT_EQ(grid.size(), 12u);
  EXPECT_EQ(grid.points().size(), 12u);
}

TEST(SweepGridSize, FilteredSizeMatchesPointsWithoutMaterializing) {
  wave::runner::SweepGrid grid;
  grid.processors({1, 2, 4, 8, 16, 32});
  grid.values("x", {1.0, 2.0, 3.0});
  grid.filter([](const wave::runner::Scenario& s) {
    return s.processors() * s.param("x") >= 8.0;
  });
  EXPECT_EQ(grid.size(), grid.points().size());
  EXPECT_GT(grid.size(), 0u);
  EXPECT_LT(grid.size(), 18u);
}

// Shared helpers for the wave-serve test suites (tests/test_serve*.cpp):
// unique socket/snapshot paths per test process and a tiny RAII wrapper
// that starts a Server and connects a Client to it.
#pragma once

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>

#include <unistd.h>

#include "serve/client.h"
#include "serve/faults.h"
#include "serve/server.h"
#include "wave/context.h"

namespace serve_test {

/// A /tmp path unique to this process and call (AF_UNIX paths must stay
/// under ~100 bytes, so keep it short).
inline std::string unique_path(const char* suffix) {
  static std::atomic<int> counter{0};
  return "/tmp/wave_t" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + suffix;
}

/// Starts a Server over a fresh Context on a unique socket and connects
/// one Client; fails the test on any setup error.
struct ServerFixture {
  wave::Context ctx;
  wave::serve::FaultPlan faults;
  wave::ServeOptions options;
  wave::serve::Server* server = nullptr;
  wave::serve::Client client;

  explicit ServerFixture(wave::ServeOptions opts = {},
                         wave::serve::FaultPlan::Spec fault_spec = {})
      : faults(fault_spec), options(std::move(opts)) {
    if (options.socket_path.empty())
      options.socket_path = unique_path(".sock");
    server = new wave::serve::Server(ctx, options, &faults);
    const wave::Status started = server->start();
    EXPECT_TRUE(started.is_ok()) << started.to_string();
    const wave::Status connected = client.connect(options.socket_path);
    EXPECT_TRUE(connected.is_ok()) << connected.to_string();
  }

  ~ServerFixture() {
    client.close();
    delete server;  // ~Server stops and joins
    std::remove(options.socket_path.c_str());
    // Snapshot files are deliberately left alone: restart tests reuse
    // them across fixtures and remove them at the end themselves.
  }

  wave::serve::Response call(const std::string& line) {
    auto response = client.call(line);
    EXPECT_TRUE(response.ok()) << response.status().to_string();
    return response.ok() ? response.value() : wave::serve::Response{};
  }
};

}  // namespace serve_test

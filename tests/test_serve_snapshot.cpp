// Crash-safe cache snapshots: bit-identical round-trips, the versioned
// checksummed header, loud rejection of every corruption class (empty,
// truncated, bad magic, wrong version, flipped payload bits, trailing
// bytes), write atomicity under injected failures, and the full
// stop-the-daemon / restart-warm cycle.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "serve/faults.h"
#include "serve/snapshot.h"
#include "serve_test_util.h"
#include "wave/context.h"
#include "wave/eval_service.h"

namespace ws = wave::serve;
using serve_test::ServerFixture;
using serve_test::unique_path;

namespace {

std::vector<wave::EvalService::CacheEntry> sample_entries() {
  const wave::Context ctx;
  wave::EvalService service(ctx);
  for (int p : {16, 256})
    EXPECT_TRUE(
        service.evaluate(ctx.query().machine("xt4-dual").processors(p)).ok());
  EXPECT_TRUE(service
                  .evaluate(ctx.query()
                                .machine("xt4-dual")
                                .processors(16)
                                .engine(wave::Engine::Simulation))
                  .ok());
  return service.export_cache();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::string out((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return out;
}

void expect_rejected(const std::string& image, const char* needle) {
  const auto decoded = ws::decode_snapshot(image);
  ASSERT_FALSE(decoded.ok()) << "corruption was accepted: " << needle;
  EXPECT_EQ(decoded.status().code(), wave::StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find(needle), std::string::npos)
      << decoded.status().message();
}

}  // namespace

TEST(ServeSnapshot, RoundTripIsBitIdentical) {
  const auto entries = sample_entries();
  ASSERT_EQ(entries.size(), 3u);
  const std::string image = ws::encode_snapshot(entries);
  const auto decoded = ws::decode_snapshot(image);
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  ASSERT_EQ(decoded.value().size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& a = entries[i];
    const auto& b = decoded.value()[i];
    EXPECT_EQ(a.key, b.key);
    // memcmp, not ==: the contract is bit-identity, and -0.0 == 0.0 or
    // NaN quirks must not be able to hide a serialization bug.
    EXPECT_EQ(std::memcmp(&a.result.time_us, &b.result.time_us,
                          sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(&a.result.comm_us, &b.result.comm_us,
                          sizeof(double)),
              0);
    ASSERT_EQ(a.result.terms.size(), b.result.terms.size());
    for (std::size_t t = 0; t < a.result.terms.size(); ++t) {
      EXPECT_EQ(a.result.terms[t].first, b.result.terms[t].first);
      EXPECT_EQ(std::memcmp(&a.result.terms[t].second,
                            &b.result.terms[t].second, sizeof(double)),
                0);
    }
    EXPECT_EQ(a.result.engine, b.result.engine);
    EXPECT_EQ(a.result.processors, b.result.processors);
  }
  // Re-encoding the decoded entries reproduces the image byte for byte.
  EXPECT_EQ(ws::encode_snapshot(decoded.value()), image);
}

TEST(ServeSnapshot, EveryCorruptionClassIsRejectedWithItsOwnDiagnosis) {
  const std::string image = ws::encode_snapshot(sample_entries());

  expect_rejected("", "empty file");
  expect_rejected(image.substr(0, 10), "truncated header");

  std::string bad_magic = image;
  bad_magic[0] = 'X';
  expect_rejected(bad_magic, "bad magic");

  std::string bad_version = image;
  bad_version[8] = 99;  // version u32 sits right after the 8-byte magic
  expect_rejected(bad_version, "unsupported version 99");

  std::string flipped = image;
  flipped[flipped.size() - 1] ^= 0x40;  // payload bit flip
  expect_rejected(flipped, "checksum mismatch");

  // Truncating the payload also lands in the checksum (it covers length
  // implicitly: fewer bytes hash differently).
  expect_rejected(image.substr(0, image.size() - 8), "checksum mismatch");

  std::string trailing = image + std::string(4, '\0');
  expect_rejected(trailing, "checksum mismatch");
}

TEST(ServeSnapshot, FramingLiesInsideAValidChecksumAreStillRejected) {
  // An attacker-grade case: rewrite a length field AND fix up the
  // checksum, so only the bounds-checked entry reader can catch it.
  const auto entries = sample_entries();
  std::string image = ws::encode_snapshot(entries);
  // The first payload field is the first entry's key length (u64, little-
  // endian, at offset 32). Claim more bytes than the payload holds.
  image[32] = static_cast<char>(0xff);
  image[33] = static_cast<char>(0xff);
  image[34] = static_cast<char>(0xff);
  // Recompute the checksum over the doctored payload (FNV-1a 64, same
  // constants as the writer) and patch it into the header.
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 32; i < image.size(); ++i) {
    h ^= static_cast<unsigned char>(image[i]);
    h *= 1099511628211ull;
  }
  for (int i = 0; i < 8; ++i)
    image[24 + i] = static_cast<char>(h >> (8 * i));
  expect_rejected(image, "malformed entry framing");
}

TEST(ServeSnapshot, MissingFileIsACleanColdStartNotAnError) {
  const auto missing = ws::read_snapshot(unique_path(".absent"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), wave::StatusCode::kNotFound);
}

TEST(ServeSnapshot, WriteIsAtomicAndInjectedFailureKeepsThePrevious) {
  const std::string path = unique_path(".snap");
  const auto entries = sample_entries();
  ASSERT_TRUE(ws::write_snapshot(path, entries).is_ok());
  const std::string before = read_file(path);

  // The injected failure fires in the crash window (after serialization,
  // before rename): the failed write must leave the previous snapshot
  // byte-identical and no temp litter behind.
  ws::FaultPlan::Spec spec;
  spec.fail_snapshot_writes = 1;
  ws::FaultPlan faults(spec);
  std::vector<wave::EvalService::CacheEntry> smaller(entries.begin(),
                                                     entries.begin() + 1);
  const wave::Status failed = ws::write_snapshot(path, smaller, &faults);
  ASSERT_FALSE(failed.is_ok());
  EXPECT_EQ(read_file(path), before);

  // The budget is consumed: the next write succeeds and replaces it.
  ASSERT_TRUE(ws::write_snapshot(path, smaller, &faults).is_ok());
  EXPECT_NE(read_file(path), before);
  const auto reread = ws::read_snapshot(path);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread.value().size(), 1u);
  std::remove(path.c_str());
}

TEST(ServeSnapshot, ServerRestartServesByteIdenticalResponsesFromTheSnapshot) {
  const std::string snapshot = unique_path(".snap");
  const std::string query =
      R"({"id":"q","op":"eval","processors":256,"iterations":3})";
  std::string cold_response;
  {
    wave::ServeOptions options;
    options.snapshot_path = snapshot;
    ServerFixture f(options);
    cold_response = f.call(query).raw;
    ASSERT_TRUE(f.call(R"({"id":"s","op":"snapshot"})").ok);
    EXPECT_EQ(f.server->stats().snapshots_written, 1u);
  }  // daemon gone
  {
    wave::ServeOptions options;
    options.snapshot_path = snapshot;
    ServerFixture f(options);
    EXPECT_EQ(f.server->stats().restored_entries, 1u);
    // The restored cache answers without re-evaluating, byte-identical
    // down to the rendered JSON (raw doubles survived the disk trip).
    EXPECT_EQ(f.call(query).raw, cold_response);
    EXPECT_EQ(f.server->cache_stats().hits, 1u);
    EXPECT_EQ(f.server->cache_stats().misses, 0u);
  }
  std::remove(snapshot.c_str());
}

TEST(ServeSnapshot, CorruptSnapshotColdStartsLoudlyAndServesOn) {
  const std::string snapshot = unique_path(".snap");
  {
    std::ofstream out(snapshot, std::ios::binary);
    out << "WAVESNAPgarbage-after-the-magic";
  }
  wave::ServeOptions options;
  options.snapshot_path = snapshot;
  ServerFixture f(options);
  const wave::ServeStats stats = f.server->stats();
  EXPECT_TRUE(stats.snapshot_load_failed);
  EXPECT_EQ(stats.restored_entries, 0u);
  // Cold but alive: evaluation works and the next snapshot op heals it.
  EXPECT_TRUE(f.call(R"({"id":"e","op":"eval","processors":64})").ok);
  ASSERT_TRUE(f.call(R"({"id":"s","op":"snapshot"})").ok);
  const auto healed = ws::read_snapshot(snapshot);
  ASSERT_TRUE(healed.ok()) << healed.status().to_string();
  EXPECT_EQ(healed.value().size(), 1u);
  std::remove(snapshot.c_str());
}

// Tests for the all-reduce model (eq. 9) and related collectives.
#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.h"
#include "loggp/backends.h"
#include "loggp/collectives.h"

namespace wl = wave::loggp;

namespace {
const wl::LogGpModel kModel(wl::xt4());
}

TEST(Allreduce, SingleCoreReducesToLogP) {
  // §3.3: "in the special case of C = 1, the equation reduces to
  // log2(P) TotalComm".
  for (int p : {2, 8, 64, 1024}) {
    const double expected =
        std::log2(static_cast<double>(p)) *
        kModel.total(8, wl::Placement::OffNode);
    EXPECT_NEAR(wl::allreduce_time(kModel, p, 1, 8), expected, 1e-9)
        << "P=" << p;
  }
}

TEST(Allreduce, DualCoreSplitsStages) {
  // C = 2: one on-chip stage, log2(P)-1 off-node stages, each doubled.
  const int p = 64;
  const double expected =
      (6.0 - 1.0) * 2.0 * kModel.total(8, wl::Placement::OffNode) +
      1.0 * 2.0 * kModel.total(8, wl::Placement::OnChip);
  EXPECT_NEAR(wl::allreduce_time(kModel, p, 2, 8), expected, 1e-9);
}

TEST(Allreduce, MonotoneInProcessors) {
  double prev = 0.0;
  for (int p = 2; p <= 65536; p *= 2) {
    const double t = wl::allreduce_time(kModel, p, 2, 8);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Allreduce, MonotoneInPayload) {
  EXPECT_LT(wl::allreduce_time(kModel, 256, 2, 8),
            wl::allreduce_time(kModel, 256, 2, 4096));
}

TEST(Allreduce, SingleRankIsFree) {
  EXPECT_DOUBLE_EQ(wl::allreduce_time(kModel, 1, 1, 8), 0.0);
}

TEST(Allreduce, NonPowerOfTwoUsesCeilLog) {
  // 1000 ranks need 10 exchange rounds, same as 1024.
  EXPECT_DOUBLE_EQ(wl::allreduce_time(kModel, 1000, 1, 8),
                   wl::allreduce_time(kModel, 1024, 1, 8));
  EXPECT_GT(wl::allreduce_time(kModel, 1025, 1, 8),
            wl::allreduce_time(kModel, 1024, 1, 8));
}

TEST(Allreduce, RejectsBadShapes) {
  EXPECT_THROW(wl::allreduce_time(kModel, 0, 1, 8),
               wave::common::contract_error);
  EXPECT_THROW(wl::allreduce_time(kModel, 4, 8, 8),
               wave::common::contract_error);  // C > P
  EXPECT_THROW(wl::allreduce_time(kModel, 64, 3, 8),
               wave::common::contract_error);  // C not a power of two
  EXPECT_THROW(wl::allreduce_time(kModel, 64, 2, -1),
               wave::common::contract_error);
}

TEST(Barrier, IsZeroPayloadAllreduce) {
  EXPECT_DOUBLE_EQ(wl::barrier_time(kModel, 128, 2),
                   wl::allreduce_time(kModel, 128, 2, 0));
}

TEST(Broadcast, TreeDepthCost) {
  // One message per tree level, the last log2(C) levels on-chip.
  const double expected =
      5.0 * kModel.total(1024, wl::Placement::OffNode) +
      1.0 * kModel.total(1024, wl::Placement::OnChip);
  EXPECT_NEAR(wl::broadcast_time(kModel, 64, 2, 1024), expected, 1e-9);
}

TEST(Broadcast, CheaperThanAllreduceAtScale) {
  // Broadcast sends one message per level; all-reduce sends C per level.
  EXPECT_LT(wl::broadcast_time(kModel, 1024, 2, 8),
            wl::allreduce_time(kModel, 1024, 2, 8));
}

// Parameterized sweep: the all-reduce model grows by exactly one off-node
// stage cost per doubling of node count (fixed C), the structural property
// behind Fig 6's logarithmic synchronization overhead.
class AllreduceScaling : public ::testing::TestWithParam<int> {};

TEST_P(AllreduceScaling, DoublingAddsOneOffNodeStage) {
  const int c = GetParam();
  const double per_stage =
      c * kModel.total(8, wl::Placement::OffNode);
  for (int p = 4 * c; p <= 32768; p *= 2) {
    const double delta = wl::allreduce_time(kModel, 2 * p, c, 8) -
                         wl::allreduce_time(kModel, p, c, 8);
    EXPECT_NEAR(delta, per_stage, 1e-9) << "P=" << p << " C=" << c;
  }
}

INSTANTIATE_TEST_SUITE_P(CoresPerNode, AllreduceScaling,
                         ::testing::Values(1, 2, 4, 8));

// Tests for the Table 6 shared-bus contention model.
#include <gtest/gtest.h>

#include "common/contracts.h"
#include "loggp/contention.h"

namespace wl = wave::loggp;

TEST(Contention, InterferenceUnit) {
  // I = odma + S * Gdma with XT4 values odma = 1.82, Gdma = 0.000072.
  const auto params = wl::xt4();
  EXPECT_NEAR(wl::interference_unit(params, 0), 1.82, 1e-12);
  EXPECT_NEAR(wl::interference_unit(params, 10000), 1.82 + 0.72, 1e-12);
  EXPECT_THROW(wl::interference_unit(params, -1),
               wave::common::contract_error);
}

TEST(Contention, SingleCoreHasNone) {
  const auto m = wl::contention_multipliers(1, 1);
  EXPECT_DOUBLE_EQ(m.total(), 0.0);
}

TEST(Contention, Table6Row1x2) {
  // "1 x 2 cores/node: add I to ReceiveN and SendS".
  const auto m = wl::contention_multipliers(1, 2);
  EXPECT_DOUBLE_EQ(m.recv_north, 1.0);
  EXPECT_DOUBLE_EQ(m.send_south, 1.0);
  EXPECT_DOUBLE_EQ(m.recv_west, 0.0);
  EXPECT_DOUBLE_EQ(m.send_east, 0.0);
}

TEST(Contention, HorizontalDualCoreMirrors) {
  // A 2 x 1 node splits along x: the E/W pair interferes instead.
  const auto m = wl::contention_multipliers(2, 1);
  EXPECT_DOUBLE_EQ(m.recv_west, 1.0);
  EXPECT_DOUBLE_EQ(m.send_east, 1.0);
  EXPECT_DOUBLE_EQ(m.recv_north, 0.0);
  EXPECT_DOUBLE_EQ(m.send_south, 0.0);
}

TEST(Contention, Table6Row2x2) {
  // "2 x 2 cores/node: add I to each Send and Receive".
  const auto m = wl::contention_multipliers(2, 2);
  EXPECT_DOUBLE_EQ(m.send_east, 1.0);
  EXPECT_DOUBLE_EQ(m.send_south, 1.0);
  EXPECT_DOUBLE_EQ(m.recv_west, 1.0);
  EXPECT_DOUBLE_EQ(m.recv_north, 1.0);
}

TEST(Contention, Table6Row2x4) {
  // "2 x 4 cores/node: add 2I to each Send and Receive".
  const auto m = wl::contention_multipliers(2, 4);
  EXPECT_DOUBLE_EQ(m.send_east, 2.0);
  EXPECT_DOUBLE_EQ(m.send_south, 2.0);
  EXPECT_DOUBLE_EQ(m.recv_west, 2.0);
  EXPECT_DOUBLE_EQ(m.recv_north, 2.0);
}

TEST(Contention, TotalInterferenceScalesWithCores) {
  // Across the Table 6 rows the total interference per tile step is C * I.
  EXPECT_DOUBLE_EQ(wl::contention_multipliers(1, 2).total(), 2.0);
  EXPECT_DOUBLE_EQ(wl::contention_multipliers(2, 2).total(), 4.0);
  EXPECT_DOUBLE_EQ(wl::contention_multipliers(2, 4).total(), 8.0);
  EXPECT_DOUBLE_EQ(wl::contention_multipliers(4, 4).total(), 16.0);
}

TEST(Contention, SeparateBusesRestoreSmallerNode) {
  // §5.3: a 16-core node with one bus per 4 cores behaves like a quad-core
  // node.
  const auto sixteen_four_buses = wl::contention_multipliers(4, 4, 4);
  const auto quad = wl::contention_multipliers(2, 2, 1);
  EXPECT_DOUBLE_EQ(sixteen_four_buses.total(), quad.total());
  // One bus per core eliminates interference entirely.
  EXPECT_DOUBLE_EQ(wl::contention_multipliers(2, 2, 4).total(), 0.0);
}

TEST(Contention, RejectsBadShapes) {
  EXPECT_THROW(wl::contention_multipliers(0, 2),
               wave::common::contract_error);
  EXPECT_THROW(wl::contention_multipliers(2, 2, 3),
               wave::common::contract_error);  // buses must divide cores
}

// Property: interference never decreases when cores per bus increase.
class ContentionGrowth : public ::testing::TestWithParam<int> {};

TEST_P(ContentionGrowth, MonotoneInCoresPerBus) {
  const int cy = GetParam();
  double prev = -1.0;
  for (int cx : {1, 2, 4, 8}) {
    const double total = wl::contention_multipliers(cx, cy).total();
    EXPECT_GE(total, prev);
    prev = total;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ContentionGrowth,
                         ::testing::Values(1, 2, 4));

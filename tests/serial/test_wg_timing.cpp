// Wall-clock Wg-measurement tests, isolated from the main suite.
//
// These compare two *measured* per-cell times, so they are only
// meaningful when nothing else competes for the CPU: under parallel ctest
// on a 1-core box the slower-but-lighter run can lose its timeslice and
// invert the comparison. The binary is therefore registered with the
// ctest RUN_SERIAL property (see CMakeLists.txt) — ctest runs it alone —
// and the assertion is a monotonic lower bound with headroom (6x the
// angular work must show at least a 1.5x per-cell time increase) rather
// than a bare greater-than, so residual OS noise cannot flip it.
#include <gtest/gtest.h>

#include "kernels/miniapp.h"

namespace wk = wave::kernels;

namespace {
wk::MiniAppConfig small_config() {
  wk::MiniAppConfig cfg;
  cfg.nx = cfg.ny = 8;
  cfg.nz = 16;
  cfg.tile_height = 4;
  cfg.angles = 4;
  return cfg;
}
}  // namespace

TEST(WgTiming, MeasurementScalesWithAngles) {
  wk::MiniAppConfig few = small_config();
  few.angles = 2;
  wk::MiniAppConfig many = small_config();
  many.angles = 12;
  const auto r_few = wk::run_miniapp(few);
  const auto r_many = wk::run_miniapp(many);
  ASSERT_GT(r_few.wg_measured, 0.0);
  ASSERT_GT(r_many.wg_measured, 0.0);
  // 6x the angles means ~6x the transport work per cell; demanding only
  // 1.5x leaves a 4x margin for timer and scheduler noise while still
  // failing if wg_measured stopped scaling with the angular work at all.
  EXPECT_GT(r_many.wg_measured, 1.5 * r_few.wg_measured);
}

// Tests for the real computational kernels used to measure Wg.
#include <gtest/gtest.h>

#include "common/contracts.h"
#include "kernels/stencil.h"
#include "kernels/transport.h"

namespace wk = wave::kernels;

TEST(Quadrature, NormalizedDirectionsAndWeights) {
  for (int count : {1, 6, 10, 24}) {
    const auto quad = wk::make_quadrature(count);
    ASSERT_EQ(static_cast<int>(quad.size()), count);
    double wsum = 0.0;
    for (const auto& o : quad) {
      EXPECT_GT(o.mu, 0.0);
      EXPECT_GT(o.eta, 0.0);
      EXPECT_GT(o.xi, 0.0);
      EXPECT_NEAR(o.mu * o.mu + o.eta * o.eta + o.xi * o.xi, 1.0, 1e-12);
      wsum += o.weight;
    }
    EXPECT_NEAR(wsum, 1.0, 1e-12);
  }
}

TEST(TransportTile, UpdateCountAndPositivity) {
  wk::TransportTile tile(4, 4, 2, wk::make_quadrature(6));
  const auto updates = tile.sweep_vacuum();
  EXPECT_EQ(updates, 4u * 4u * 2u * 6u);
  EXPECT_GT(tile.scalar_flux(), 0.0);  // positive source -> positive flux
}

TEST(TransportTile, FluxMonotoneInSource) {
  const auto quad = wk::make_quadrature(4);
  wk::TransportTile weak(4, 4, 4, quad, 1.0, 1.0);
  wk::TransportTile strong(4, 4, 4, quad, 1.0, 2.0);
  weak.sweep_vacuum();
  strong.sweep_vacuum();
  EXPECT_GT(strong.scalar_flux(), weak.scalar_flux());
  // Linearity of the transport sweep in the source: double source, double
  // flux (vacuum inflow).
  EXPECT_NEAR(strong.scalar_flux(), 2.0 * weak.scalar_flux(), 1e-9);
}

TEST(TransportTile, FluxDecreasesWithAbsorption) {
  const auto quad = wk::make_quadrature(4);
  wk::TransportTile thin(4, 4, 4, quad, 0.5, 1.0);
  wk::TransportTile thick(4, 4, 4, quad, 4.0, 1.0);
  thin.sweep_vacuum();
  thick.sweep_vacuum();
  EXPECT_GT(thin.scalar_flux(), thick.scalar_flux());
}

TEST(TransportTile, InflowPropagatesDownstream) {
  const auto quad = wk::make_quadrature(2);
  wk::TransportTile tile(3, 3, 1, quad, 1.0, 0.0);  // no source
  std::vector<double> west(tile.west_face_size(), 1.0);
  std::vector<double> north(tile.north_face_size(), 1.0);
  std::vector<double> east(tile.west_face_size(), 0.0);
  std::vector<double> south(tile.north_face_size(), 0.0);
  tile.sweep(west, north, east, south);
  // With zero source the only flux comes from the inflow; outflow must be
  // positive but attenuated below the inflow level.
  for (double v : east) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(TransportTile, VacuumDeepCellsApproachFixedPoint) {
  // Far from the inflow faces, the flux approaches the infinite-medium
  // fixed point psi* = q / sigma_t of the diamond-difference update.
  const auto quad = wk::make_quadrature(1);
  const double sigma = 2.0, q = 3.0;
  wk::TransportTile tile(24, 24, 8, quad, sigma, q);
  tile.sweep_vacuum();
  // Re-sweep feeding the previous east/south outflow back in as inflow to
  // emulate an interior tile: the scalar flux per cell tends to q/sigma.
  std::vector<double> west(tile.west_face_size(), q / sigma);
  std::vector<double> north(tile.north_face_size(), q / sigma);
  std::vector<double> east(tile.west_face_size(), 0.0);
  std::vector<double> south(tile.north_face_size(), 0.0);
  tile.sweep(west, north, east, south);
  const double cells = 24.0 * 24.0 * 8.0;
  EXPECT_NEAR(tile.scalar_flux() / cells, q / sigma, 0.05 * q / sigma);
}

TEST(TransportTile, RejectsBadConstruction) {
  EXPECT_THROW(wk::TransportTile(0, 1, 1, wk::make_quadrature(1)),
               wave::common::contract_error);
  EXPECT_THROW(wk::TransportTile(1, 1, 1, {}),
               wave::common::contract_error);
  EXPECT_THROW(wk::TransportTile(1, 1, 1, wk::make_quadrature(1), 0.0),
               wave::common::contract_error);
}

TEST(MeasureWg, PositiveAndScalesWithAngles) {
  const double wg6 = wk::measure_wg_transport(6, 1000, 2);
  const double wg12 = wk::measure_wg_transport(12, 1000, 2);
  EXPECT_GT(wg6, 0.0);
  // Twice the angles should cost roughly twice the work per cell (within
  // generous timing noise bounds).
  EXPECT_GT(wg12, wg6);
}

TEST(StencilPlane, RelaxationReducesResidual) {
  wk::StencilPlane plane(32, 32);
  plane.compute_rhs(1.0);
  const double r0 = plane.relax_lower(1.0);
  double r_last = r0;
  for (int it = 0; it < 20; ++it) {
    plane.relax_lower(1.0);
    r_last = plane.relax_upper(1.0);
  }
  EXPECT_LT(r_last, r0);  // SSOR converges on the model problem
}

TEST(StencilPlane, ZeroRhsIsFixedPoint) {
  wk::StencilPlane plane(8, 8);
  // rhs defaults to zero and u starts at zero: relaxation changes nothing.
  EXPECT_DOUBLE_EQ(plane.relax_lower(1.5), 0.0);
  EXPECT_DOUBLE_EQ(plane.relax_upper(1.5), 0.0);
  EXPECT_DOUBLE_EQ(plane.four_point_stencil(), 0.0);
}

TEST(StencilPlane, AccessorsBoundsChecked) {
  wk::StencilPlane plane(4, 4);
  plane.at(0, 0) = 1.0;
  EXPECT_DOUBLE_EQ(plane.at(0, 0), 1.0);
  EXPECT_THROW(plane.at(4, 0), wave::common::contract_error);
  EXPECT_THROW(plane.at(0, -1), wave::common::contract_error);
}

TEST(MeasureWgLu, AllComponentsPositive) {
  const auto m = wk::measure_wg_lu(4096, 2);
  EXPECT_GT(m.wg, 0.0);
  EXPECT_GT(m.wg_pre, 0.0);
  EXPECT_GT(m.stencil_per_cell, 0.0);
}

// The pluggable comm-model layer: registry lookup, the closed forms of
// the three shipped backends, their degeneration to pure LogGP, solver
// integration (no double-charged contention), the LogGPS wiring into the
// discrete-event simulator, and a pinned cross-backend regression on a
// fixed scenario.
#include <gtest/gtest.h>

#include <memory>

#include "common/contracts.h"
#include "core/benchmarks.h"
#include "core/machine.h"
#include "core/solver.h"
#include "loggp/backends.h"
#include "loggp/contention.h"
#include "loggp/registry.h"
#include "workloads/wavefront.h"

namespace wc = wave::core;
namespace wl = wave::loggp;

using wl::Placement;

namespace {
const wl::MachineParams kXt4 = wl::xt4();
constexpr int kSmall = 512;   // below the 1024-byte eager limit
constexpr int kLarge = 4096;  // rendezvous / DMA path
// Read-only lookups share one registry; tests that mutate construct their
// own, so registration side effects never leak across tests.
const wl::CommModelRegistry kReg;
}  // namespace

TEST(CommModelRegistry, ListsTheThreeShippedBackends) {
  const auto names = wl::comm_model_names(kReg);
  ASSERT_GE(names.size(), 3u);
  EXPECT_EQ(names[0], "loggp");
  EXPECT_EQ(names[1], "loggps");
  EXPECT_EQ(names[2], "contention");
  for (const auto& info : kReg.list())
    EXPECT_FALSE(info.description.empty()) << info.name;
}

TEST(CommModelRegistry, MakesBackendsByName) {
  for (const char* name : {"loggp", "loggps", "contention"}) {
    const auto model = wl::make_comm_model(kReg, name, kXt4);
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->name(), name);
    EXPECT_EQ(model->params().off.o, kXt4.off.o);
  }
}

TEST(CommModelRegistry, UnknownNameThrowsListingAlternatives) {
  try {
    wl::make_comm_model(kReg, "telepathy", kXt4);
    FAIL() << "expected contract_error";
  } catch (const wave::common::contract_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("telepathy"), std::string::npos) << what;
    EXPECT_NE(what.find("loggp"), std::string::npos) << what;
  }
}

TEST(CommModelRegistry, DuplicateRegistrationThrows) {
  wl::CommModelRegistry registry;
  EXPECT_THROW(registry.add(
                   "loggp", "dup",
                   [](const wl::MachineParams& p, const wl::CommModelOptions&) {
                     return std::make_unique<wl::LogGpModel>(p);
                   }),
               wave::common::contract_error);
}

TEST(CommModelRegistry, CustomBackendsPlugIn) {
  // A study can register its own backend and select it everywhere by name
  // (also through MachineConfig::comm_model).
  wl::CommModelRegistry registry;
  registry.add(
      "test-double-latency", "LogGP with doubled wire latency",
      [](const wl::MachineParams& p, const wl::CommModelOptions&) {
        wl::MachineParams twice = p;
        twice.off.L *= 2.0;
        return std::make_unique<wl::LogGpModel>(twice);
      });
  const auto model = wl::make_comm_model(registry, "test-double-latency", kXt4);
  const wl::LogGpModel reference(kXt4);
  EXPECT_DOUBLE_EQ(model->total(kSmall, Placement::OffNode),
                   reference.total(kSmall, Placement::OffNode) + kXt4.off.L);

  // ...and is selectable through MachineConfig::comm_model like the
  // shipped backends (name() still reports the implementing class).
  wc::MachineConfig machine = wc::MachineConfig::xt4_dual_core();
  machine.comm_model = "test-double-latency";
  EXPECT_DOUBLE_EQ(
      machine.make_comm_model(registry)->total(kSmall, Placement::OffNode),
      reference.total(kSmall, Placement::OffNode) + kXt4.off.L);
}

TEST(LogGpsBackend, DegeneratesToLogGpWhenSyncIsZero) {
  ASSERT_DOUBLE_EQ(kXt4.off.sync, 0.0);
  const wl::LogGpModel loggp(kXt4);
  const wl::LogGpsModel loggps(kXt4);
  for (int bytes : {0, 1, kSmall, 1024, 1025, kLarge}) {
    for (Placement where : {Placement::OffNode, Placement::OnChip}) {
      EXPECT_DOUBLE_EQ(loggps.total(bytes, where), loggp.total(bytes, where));
      EXPECT_DOUBLE_EQ(loggps.send(bytes, where), loggp.send(bytes, where));
      EXPECT_DOUBLE_EQ(loggps.recv(bytes, where), loggp.recv(bytes, where));
    }
  }
  EXPECT_DOUBLE_EQ(loggps.rendezvous_sync(), 0.0);
}

TEST(LogGpsBackend, ChargesSyncOnLargeOffNodeMessagesOnly) {
  wl::MachineParams params = kXt4;
  params.off.sync = 2.5;
  const wl::LogGpModel loggp(params);
  const wl::LogGpsModel loggps(params);
  EXPECT_DOUBLE_EQ(loggps.rendezvous_sync(), 2.5);

  // Large off-node: total and sender occupancy each gain exactly s.
  EXPECT_DOUBLE_EQ(loggps.total(kLarge, Placement::OffNode),
                   loggp.total(kLarge, Placement::OffNode) + 2.5);
  EXPECT_DOUBLE_EQ(loggps.send(kLarge, Placement::OffNode),
                   loggp.send(kLarge, Placement::OffNode) + 2.5);
  EXPECT_DOUBLE_EQ(loggps.recv(kLarge, Placement::OffNode),
                   loggp.recv(kLarge, Placement::OffNode));

  // Eager off-node and both on-chip paths are untouched.
  EXPECT_DOUBLE_EQ(loggps.total(kSmall, Placement::OffNode),
                   loggp.total(kSmall, Placement::OffNode));
  EXPECT_DOUBLE_EQ(loggps.send(kSmall, Placement::OffNode),
                   loggp.send(kSmall, Placement::OffNode));
  EXPECT_DOUBLE_EQ(loggps.total(kLarge, Placement::OnChip),
                   loggp.total(kLarge, Placement::OnChip));
  EXPECT_DOUBLE_EQ(loggps.total(kSmall, Placement::OnChip),
                   loggp.total(kSmall, Placement::OnChip));
}

TEST(BusContentionBackend, SharersOneDegeneratesToLogGp) {
  const wl::LogGpModel loggp(kXt4);
  const wl::BusContentionModel cont(kXt4, 1);
  EXPECT_TRUE(cont.models_bus_contention());
  for (int bytes : {kSmall, kLarge}) {
    for (Placement where : {Placement::OffNode, Placement::OnChip}) {
      EXPECT_DOUBLE_EQ(cont.total(bytes, where), loggp.total(bytes, where));
      EXPECT_DOUBLE_EQ(cont.send(bytes, where), loggp.send(bytes, where));
      EXPECT_DOUBLE_EQ(cont.recv(bytes, where), loggp.recv(bytes, where));
    }
  }
}

TEST(BusContentionBackend, AddsInterferenceUnitsPerBusWindow) {
  const int sharers = 4;
  const wl::LogGpModel loggp(kXt4);
  const wl::BusContentionModel cont(kXt4, sharers);
  const double i_small = wl::interference_unit(kXt4, kSmall);
  const double i_large = wl::interference_unit(kXt4, kLarge);
  const double wait_small = (sharers - 1) * i_small;
  const double wait_large = (sharers - 1) * i_large;

  // Off-node: TX and RX windows on the end-to-end path.
  EXPECT_DOUBLE_EQ(cont.total(kSmall, Placement::OffNode),
                   loggp.total(kSmall, Placement::OffNode) + 2.0 * wait_small);
  EXPECT_DOUBLE_EQ(cont.total(kLarge, Placement::OffNode),
                   loggp.total(kLarge, Placement::OffNode) + 2.0 * wait_large);
  // Receives: the local RX window for eager, both windows for rendezvous.
  EXPECT_DOUBLE_EQ(cont.recv(kSmall, Placement::OffNode),
                   loggp.recv(kSmall, Placement::OffNode) + wait_small);
  EXPECT_DOUBLE_EQ(cont.recv(kLarge, Placement::OffNode),
                   loggp.recv(kLarge, Placement::OffNode) + 2.0 * wait_large);
  // Sender occupancy unchanged (MPI_Send returns before the data DMA).
  EXPECT_DOUBLE_EQ(cont.send(kSmall, Placement::OffNode),
                   loggp.send(kSmall, Placement::OffNode));
  EXPECT_DOUBLE_EQ(cont.send(kLarge, Placement::OffNode),
                   loggp.send(kLarge, Placement::OffNode));
  // On-chip: only the large-message DMA crosses the shared bus.
  EXPECT_DOUBLE_EQ(cont.total(kSmall, Placement::OnChip),
                   loggp.total(kSmall, Placement::OnChip));
  EXPECT_DOUBLE_EQ(cont.total(kLarge, Placement::OnChip),
                   loggp.total(kLarge, Placement::OnChip) + wait_large);
  EXPECT_DOUBLE_EQ(cont.recv(kLarge, Placement::OnChip),
                   loggp.recv(kLarge, Placement::OnChip) + wait_large);
}

TEST(SolverBackendIntegration, ContentionBackendSuppressesTable6Terms) {
  // On a single-core-per-node machine the contention backend has no
  // sharers, and with Table 6's terms suppressed the prediction must be
  // *identical* to LogGP — any difference would mean double counting.
  wc::MachineConfig loggp_machine = wc::MachineConfig::xt4_single_core();
  wc::MachineConfig cont_machine = loggp_machine;
  cont_machine.comm_model = "contention";
  const auto app = wc::benchmarks::chimaera();
  const auto a = wc::Solver(app, loggp_machine, kReg).evaluate(256);
  const auto b = wc::Solver(app, cont_machine, kReg).evaluate(256);
  EXPECT_DOUBLE_EQ(a.iteration.total, b.iteration.total);
  EXPECT_DOUBLE_EQ(a.iteration.comm, b.iteration.comm);
}

TEST(SolverBackendIntegration, ContentionSlowsSharedBusMachines) {
  wc::MachineConfig loggp_machine = wc::MachineConfig::xt4_with_cores(4);
  wc::MachineConfig cont_machine = loggp_machine;
  cont_machine.comm_model = "contention";
  const auto app = wc::benchmarks::chimaera();
  const auto a = wc::Solver(app, loggp_machine, kReg).evaluate(256);
  const auto b = wc::Solver(app, cont_machine, kReg).evaluate(256);
  EXPECT_GT(b.iteration.total, a.iteration.total);
  // ...but one bus per core restores the uncontended prediction shape:
  // fewer sharers, less interference.
  wc::MachineConfig buses = cont_machine;
  buses.buses_per_node = 4;
  const auto c = wc::Solver(app, buses, kReg).evaluate(256);
  EXPECT_LT(c.iteration.total, b.iteration.total);
}

TEST(SimBackendIntegration, LogGpsSyncSlowsRendezvousHeavySimulation) {
  // Sweep3D 64^3 on 16 ranks: EW boundary messages are 1536 B, above the
  // eager limit, so the simulated rendezvous path pays the sync cost and
  // the LogGPS machine must simulate strictly slower.
  wc::benchmarks::Sweep3dConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 64;
  const auto app = wc::benchmarks::sweep3d(cfg);

  wc::MachineConfig machine = wc::MachineConfig::xt4_dual_core();
  machine.loggp.off.sync = 10.0;
  ASSERT_GT(app.message_bytes_ew(4, 4), machine.loggp.eager_limit_bytes);

  wc::MachineConfig loggps_machine = machine;
  loggps_machine.comm_model = "loggps";
  const auto plain = wave::workloads::simulate_wavefront(app, machine, kReg, 16);
  const auto synced =
      wave::workloads::simulate_wavefront(app, loggps_machine, kReg, 16);
  EXPECT_GT(synced.time_per_iteration, plain.time_per_iteration);

  // The "loggp" backend ignores off.sync entirely: same machine, sync
  // stripped, identical simulation.
  wc::MachineConfig no_sync = machine;
  no_sync.loggp.off.sync = 0.0;
  const auto baseline = wave::workloads::simulate_wavefront(app, no_sync, kReg, 16);
  EXPECT_DOUBLE_EQ(plain.time_per_iteration, baseline.time_per_iteration);
}

TEST(CrossBackendRegression, PinnedPredictionsOnFixedScenario) {
  // The fixed scenario of bench/model_compare: Sweep3D 256^3 at P = 256.
  // Golden values pin each backend's prediction (µs per iteration) so a
  // silent change in any backend's closed forms fails here first.
  wc::benchmarks::Sweep3dConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 256;
  const auto app = wc::benchmarks::sweep3d(cfg);

  auto iter_ms = [&](wc::MachineConfig machine, const char* backend) {
    machine.comm_model = backend;
    return wc::Solver(app, machine, kReg).evaluate(256).iteration.total / 1.0e3;
  };

  const auto xt4 = wc::MachineConfig::xt4_dual_core();
  const auto sp2 = wc::MachineConfig::sp2_single_core();
  auto quad = wc::MachineConfig::xt4_with_cores(4);

  const double tol = 1.0e-3;  // 0.1% relative
  EXPECT_NEAR(iter_ms(xt4, "loggp"), 347.236, 347.236 * tol);
  EXPECT_NEAR(iter_ms(xt4, "loggps"), 347.236, 347.236 * tol);
  EXPECT_NEAR(iter_ms(xt4, "contention"), 351.693, 351.693 * tol);
  EXPECT_NEAR(iter_ms(sp2, "loggp"), 898.991, 898.991 * tol);
  EXPECT_NEAR(iter_ms(sp2, "loggps"), 931.961, 931.961 * tol);
  EXPECT_NEAR(iter_ms(sp2, "contention"), 898.991, 898.991 * tol);
  EXPECT_NEAR(iter_ms(quad, "loggp"), 351.257, 351.257 * tol);
  EXPECT_NEAR(iter_ms(quad, "loggps"), 351.257, 351.257 * tol);
  EXPECT_NEAR(iter_ms(quad, "contention"), 368.709, 368.709 * tol);
}

// The batch solver's correctness contract: BYTE-identical to the scalar
// Solver on every point — not approximately equal, bit-for-bit. The plan
// (core/batch_solver.h) only pre-evaluates the exact doubles the scalar
// path's virtual calls would return and replays them in the scalar path's
// operation order, so memcmp on every result field must pass over the full
// pinned reference grids, every comm backend, and every edge-shaped grid.
// BatchRunner's default routing rides the same contract: batch-on and
// batch-off record sets serialize identically at any thread count.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/batch_solver.h"
#include "core/benchmarks.h"
#include "core/solver.h"
#include "loggp/registry.h"
#include "runner/reference_grids.h"
#include "runner/runner.h"
#include "wave/context.h"

namespace wc = wave::core;
namespace wb = wave::core::benchmarks;
namespace wr = wave::runner;

#ifndef WAVE_MACHINES_DIR
#define WAVE_MACHINES_DIR "machines"
#endif

namespace {

// Shared read-only context/registry: the scalar reference and the batch
// plan must resolve backends against the same catalog.
const wave::Context kCtx;
const wave::loggp::CommModelRegistry kReg;

/// memcmp on the object representation of a double: NaN-safe, sign-of-zero
/// strict — the contract is bit identity, not numeric closeness.
::testing::AssertionResult bits_equal(double a, double b) {
  if (std::memcmp(&a, &b, sizeof a) == 0)
    return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "doubles differ: " << a << " vs " << b;
}

::testing::AssertionResult split_equal(const wc::TimeSplit& a,
                                       const wc::TimeSplit& b) {
  if (const auto r = bits_equal(a.total, b.total); !r) return r;
  return bits_equal(a.comm, b.comm);
}

/// Every field of the two results, bit for bit.
void expect_identical(const wc::ModelResult& a, const wc::ModelResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.grid.n(), b.grid.n()) << what;
  EXPECT_EQ(a.grid.m(), b.grid.m()) << what;
  EXPECT_TRUE(bits_equal(a.w, b.w)) << what << " (w)";
  EXPECT_TRUE(bits_equal(a.wpre, b.wpre)) << what << " (wpre)";
  EXPECT_EQ(a.msg_bytes_ew, b.msg_bytes_ew) << what;
  EXPECT_EQ(a.msg_bytes_ns, b.msg_bytes_ns) << what;
  EXPECT_TRUE(split_equal(a.t_diagfill, b.t_diagfill)) << what << " (r3a)";
  EXPECT_TRUE(split_equal(a.t_fullfill, b.t_fullfill)) << what << " (r3b)";
  EXPECT_TRUE(split_equal(a.t_stack, b.t_stack)) << what << " (r4)";
  EXPECT_TRUE(split_equal(a.t_nonwavefront, b.t_nonwavefront))
      << what << " (nonwf)";
  EXPECT_TRUE(split_equal(a.iteration, b.iteration)) << what << " (r5)";
  EXPECT_TRUE(split_equal(a.fill, b.fill)) << what << " (fill)";
  EXPECT_EQ(a.iterations_per_timestep, b.iterations_per_timestep) << what;
  EXPECT_EQ(a.energy_groups, b.energy_groups) << what;
  EXPECT_TRUE(split_equal(a.timestep_split(), b.timestep_split()))
      << what << " (timestep)";
}

/// Runs every analytic point of `grid` through both paths and compares.
void expect_grid_identical(const wr::SweepGrid& grid) {
  wc::BatchEval plan(kCtx.comm_model_registry());
  std::vector<wc::BatchPoint> bpoints;
  std::vector<wr::Scenario> scenarios;
  for (const wr::Scenario& s : grid.points()) {
    if (s.engine != wr::Engine::Model) continue;
    wc::BatchPoint p;
    p.app = plan.add_app(s.app);
    p.machine = plan.add_machine(s.effective_machine());
    p.grid = s.grid;
    bpoints.push_back(p);
    scenarios.push_back(s);
  }
  ASSERT_FALSE(bpoints.empty());

  wc::BatchScratch scratch;
  wc::ModelResult batch;
  for (std::size_t i = 0; i < bpoints.size(); ++i) {
    const wr::Scenario& s = scenarios[i];
    const wc::ModelResult scalar =
        wc::Solver(s.app, s.effective_machine(), kCtx.comm_model_registry())
            .evaluate(s.grid);
    plan.evaluate_point(bpoints[i], scratch, batch);
    expect_identical(scalar, batch,
                     "point " + std::to_string(i) + " (" +
                         s.effective_machine().comm_model + ", grid " +
                         std::to_string(s.grid.n()) + "x" +
                         std::to_string(s.grid.m()) + ")");
  }

  // The SoA evaluate() reconstructs the same bits through at(k).
  const wc::BatchResults soa = plan.evaluate(bpoints);
  ASSERT_EQ(soa.size(), bpoints.size());
  for (std::size_t i = 0; i < bpoints.size(); ++i) {
    plan.evaluate_point(bpoints[i], scratch, batch);
    expect_identical(batch, soa.at(i),
                     "SoA point " + std::to_string(i));
  }
}

}  // namespace

TEST(BatchSolver, ByteIdenticalOnModelCompareGrid) {
  // Machine configs x comm backends x system sizes — the pinned
  // cross-backend reference sweep, every point bit-compared.
  expect_grid_identical(wr::model_compare_grid(kCtx, WAVE_MACHINES_DIR));
}

TEST(BatchSolver, ByteIdenticalOnWorkloadMatrixGrid) {
  expect_grid_identical(wr::workload_matrix_grid(kCtx, false));
}

TEST(BatchSolver, ByteIdenticalAcrossBackendsAndSyncTerms) {
  // Every registered backend on both paper machines, synchronization
  // terms on and off — the axes that change which virtual calls the
  // scalar path makes, i.e. which doubles the plan must hoist.
  wr::SweepGrid grid;
  grid.base().app = wb::sweep3d_20m();
  grid.machines({{"dual", wc::MachineConfig::xt4_dual_core()},
                 {"sp2", wc::MachineConfig::sp2_single_core()}});
  grid.comm_models(kCtx, wave::loggp::comm_model_names(kCtx.comm_model_registry()));
  grid.values("sync", {0, 1}, [](wr::Scenario& s, double v) {
    s.machine.synchronization_terms = v != 0.0;
  });
  grid.processors({64, 1024, 4096});
  expect_grid_identical(grid);
}

TEST(BatchSolver, ByteIdenticalOnEdgeGrids) {
  // Degenerate decompositions: a single processor (no fill, no comm), a
  // one-row pipeline, a one-column stack, and a tall-node machine where
  // the row-parity table does the work.
  wc::BatchEval plan(kCtx.comm_model_registry());
  const std::uint32_t app = plan.add_app(wb::chimaera());
  const std::uint32_t dual = plan.add_machine(wc::MachineConfig::xt4_dual_core());
  const std::uint32_t quad = plan.add_machine(wc::MachineConfig::xt4_with_cores(8, 2));

  wc::BatchScratch scratch;
  wc::ModelResult batch;
  for (const std::uint32_t machine : {dual, quad}) {
    for (const wave::topo::Grid grid :
         {wave::topo::Grid(1, 1), wave::topo::Grid(64, 1),
          wave::topo::Grid(1, 64), wave::topo::Grid(2, 2),
          wave::topo::Grid(128, 32)}) {
      wc::BatchPoint p;
      p.app = app;
      p.machine = machine;
      p.grid = grid;
      plan.evaluate_point(p, scratch, batch);
      const wc::ModelResult scalar =
          wc::Solver(plan.app(app), plan.machine(machine),
                     kCtx.comm_model_registry())
              .evaluate(grid);
      expect_identical(scalar, batch,
                       "grid " + std::to_string(grid.n()) + "x" +
                           std::to_string(grid.m()));
    }
  }
}

TEST(BatchSolver, AddAppAndAddMachineMemoizePerAxisValue) {
  wc::BatchEval plan(kCtx.comm_model_registry());
  const std::uint32_t a0 = plan.add_app(wb::chimaera());
  const std::uint32_t a1 = plan.add_app(wb::chimaera());
  EXPECT_EQ(a0, a1);
  EXPECT_EQ(plan.app_count(), 1u);
  const std::uint32_t a2 = plan.add_app(wb::sweep3d_20m());
  EXPECT_NE(a0, a2);
  EXPECT_EQ(plan.app_count(), 2u);

  const std::uint32_t m0 = plan.add_machine(wc::MachineConfig::xt4_dual_core());
  const std::uint32_t m1 = plan.add_machine(wc::MachineConfig::xt4_dual_core());
  EXPECT_EQ(m0, m1);
  EXPECT_EQ(plan.machine_count(), 1u);
  // A different comm override is a different machine entry (its own
  // backend), even with identical LogGP numbers.
  wc::MachineConfig loggps = wc::MachineConfig::xt4_dual_core();
  loggps.comm_model = "loggps";
  EXPECT_NE(plan.add_machine(loggps), m0);
  EXPECT_EQ(plan.machine_count(), 2u);
}

TEST(BatchSolver, RejectsInvalidAxisValuesAtPlanTime) {
  wc::BatchEval plan(kCtx.comm_model_registry());
  wc::AppParams bad;  // default app: nx = 0, out of domain
  EXPECT_THROW(plan.add_app(bad), wave::common::contract_error);
  wc::MachineConfig unknown = wc::MachineConfig::xt4_dual_core();
  unknown.comm_model = "telepathy";
  EXPECT_THROW(plan.add_machine(unknown), wave::common::contract_error);
}

namespace {

/// An analytic sweep with repeated axis values (exercising plan
/// memoization) plus a filter (exercising index/seed stability through the
/// batched route).
wr::SweepGrid analytic_sweep() {
  wr::SweepGrid grid;
  grid.apps({{"Sweep3D", wb::sweep3d_20m()}, {"Chimaera", wb::chimaera()}});
  grid.machines({{"dual", wc::MachineConfig::xt4_dual_core()},
                 {"single", wc::MachineConfig::xt4_single_core()}});
  grid.comm_models(kCtx, {"loggp", "loggps", "contention"});
  grid.processors({16, 64, 256, 1024});
  grid.values("Htile", {1, 2, 5},
              [](wr::Scenario& s, double h) { s.app.htile = h; });
  return grid;
}

}  // namespace

TEST(BatchRunnerRoute, BatchOnAndOffSerializeIdentically) {
  const auto points = analytic_sweep().points();
  wr::BatchRunner::Options scalar(1);
  scalar.batch = false;
  const std::string off =
      wr::to_csv(wr::BatchRunner(kCtx, scalar).run(points));
  const std::string on = wr::to_csv(
      wr::BatchRunner(kCtx, wr::BatchRunner::Options(1)).run(points));
  EXPECT_EQ(off, on);
}

TEST(BatchRunnerRoute, BatchedRouteIsThreadCountInvariant) {
  const auto points = analytic_sweep().points();
  const std::string one = wr::to_csv(
      wr::BatchRunner(kCtx, wr::BatchRunner::Options(1)).run(points));
  const std::string four = wr::to_csv(
      wr::BatchRunner(kCtx, wr::BatchRunner::Options(4)).run(points));
  const std::string chunked = wr::to_csv(
      wr::BatchRunner(kCtx, wr::BatchRunner::Options(4, 7)).run(points));
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, chunked);
}

TEST(BatchRunnerRoute, FilteredGridKeepsIndicesThroughTheBatchedRoute) {
  wr::SweepGrid grid = analytic_sweep();
  grid.filter([](const wr::Scenario& s) { return s.param("Htile") > 1.0; });
  wr::BatchRunner::Options scalar(1);
  scalar.batch = false;
  const auto off = wr::BatchRunner(kCtx, scalar).run(grid);
  const auto on =
      wr::BatchRunner(kCtx, wr::BatchRunner::Options(2)).run(grid);
  ASSERT_EQ(off.size(), on.size());
  ASSERT_FALSE(off.empty());
  for (std::size_t i = 0; i < off.size(); ++i)
    EXPECT_EQ(off[i].index, on[i].index);
  EXPECT_EQ(wr::to_csv(off), wr::to_csv(on));
}

TEST(BatchRunnerRoute, MixedEngineSweepRoutesOnlyAnalyticPoints) {
  // DES points must keep the scalar evaluators: a mixed sweep through the
  // default (batch-routed) runner serializes identically to batch-off.
  wc::benchmarks::Sweep3dConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 32;
  wr::SweepGrid grid;
  grid.base().app = wb::sweep3d(cfg);
  grid.base().machine = wc::MachineConfig::xt4_dual_core();
  grid.processors({4, 16});
  grid.engines({wr::Engine::Model, wr::Engine::Simulation});
  wr::BatchRunner::Options scalar(1);
  scalar.batch = false;
  EXPECT_EQ(
      wr::to_csv(wr::BatchRunner(kCtx, scalar).run(grid)),
      wr::to_csv(
          wr::BatchRunner(kCtx, wr::BatchRunner::Options(1)).run(grid)));
}

TEST(BatchRunnerRoute, SinglePointSweepBatchRoutes) {
  wr::SweepGrid grid;
  grid.base().app = wb::chimaera();
  grid.processors({256});
  wr::BatchRunner::Options scalar(1);
  scalar.batch = false;
  const auto off = wr::BatchRunner(kCtx, scalar).run(grid);
  const auto on =
      wr::BatchRunner(kCtx, wr::BatchRunner::Options(1)).run(grid);
  ASSERT_EQ(on.size(), 1u);
  EXPECT_EQ(wr::to_csv(off), wr::to_csv(on));
}

// Tests for the discrete-event engine: ordering, determinism, limits.
#include <gtest/gtest.h>

#include <vector>

#include "common/contracts.h"
#include "sim/engine.h"
#include "sim/resource.h"

namespace ws = wave::sim;

TEST(Engine, ExecutesInTimeOrder) {
  ws::Engine e;
  std::vector<int> order;
  e.at(3.0, [&] { order.push_back(3); });
  e.at(1.0, [&] { order.push_back(1); });
  e.at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  EXPECT_EQ(e.events_processed(), 3u);
}

TEST(Engine, EqualTimesAreFifo) {
  ws::Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) e.at(5.0, [&order, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, CallbacksMaySchedule) {
  ws::Engine e;
  int fired = 0;
  e.at(1.0, [&] {
    ++fired;
    e.after(1.0, [&] { ++fired; });
  });
  e.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
}

TEST(Engine, RejectsPastScheduling) {
  ws::Engine e;
  bool checked = false;
  e.at(10.0, [&] {
    EXPECT_THROW(e.at(5.0, [] {}), wave::common::contract_error);
    EXPECT_THROW(e.after(-1.0, [] {}), wave::common::contract_error);
    checked = true;
  });
  e.run();
  EXPECT_TRUE(checked);
}

TEST(Engine, RunUntilStopsAtLimit) {
  ws::Engine e;
  int fired = 0;
  e.at(1.0, [&] { ++fired; });
  e.at(5.0, [&] { ++fired; });
  e.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(e.drained());
  e.run();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(e.drained());
}

TEST(Engine, RunUntilAdvancesClockWhenIdle) {
  ws::Engine e;
  e.run_until(7.5);
  EXPECT_DOUBLE_EQ(e.now(), 7.5);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto trace = [] {
    ws::Engine e;
    std::vector<double> times;
    for (int i = 0; i < 100; ++i) {
      e.at(static_cast<double>((i * 37) % 50),
           [&times, &e] { times.push_back(e.now()); });
    }
    e.run();
    return times;
  };
  EXPECT_EQ(trace(), trace());
}

TEST(FifoResource, GrantsImmediatelyWhenIdle) {
  ws::FifoResource r;
  EXPECT_DOUBLE_EQ(r.reserve(5.0, 2.0), 5.0);
  EXPECT_DOUBLE_EQ(r.free_at(), 7.0);
  EXPECT_DOUBLE_EQ(r.wait_total(), 0.0);
}

TEST(FifoResource, QueuesOverlappingRequests) {
  ws::FifoResource r;
  EXPECT_DOUBLE_EQ(r.reserve(0.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(r.reserve(1.0, 3.0), 3.0);  // pushed behind the first
  EXPECT_DOUBLE_EQ(r.reserve(10.0, 1.0), 10.0);  // idle again
  EXPECT_DOUBLE_EQ(r.wait_total(), 2.0);
  EXPECT_DOUBLE_EQ(r.busy_total(), 7.0);
}

TEST(FifoResource, ZeroDurationIsAllowed) {
  ws::FifoResource r;
  EXPECT_DOUBLE_EQ(r.reserve(1.0, 0.0), 1.0);
  EXPECT_THROW(r.reserve(1.0, -1.0), wave::common::contract_error);
}

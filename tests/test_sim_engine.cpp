// Tests for the discrete-event engine: ordering, determinism, limits.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "common/contracts.h"
#include "sim/engine.h"
#include "sim/resource.h"

namespace ws = wave::sim;

TEST(Engine, ExecutesInTimeOrder) {
  ws::Engine e;
  std::vector<int> order;
  e.at(3.0, [&] { order.push_back(3); });
  e.at(1.0, [&] { order.push_back(1); });
  e.at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  EXPECT_EQ(e.events_processed(), 3u);
}

TEST(Engine, EqualTimesAreFifo) {
  ws::Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) e.at(5.0, [&order, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, CallbacksMaySchedule) {
  ws::Engine e;
  int fired = 0;
  e.at(1.0, [&] {
    ++fired;
    e.after(1.0, [&] { ++fired; });
  });
  e.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
}

TEST(Engine, RejectsPastScheduling) {
  ws::Engine e;
  bool checked = false;
  e.at(10.0, [&] {
    EXPECT_THROW(e.at(5.0, [] {}), wave::common::contract_error);
    EXPECT_THROW(e.after(-1.0, [] {}), wave::common::contract_error);
    checked = true;
  });
  e.run();
  EXPECT_TRUE(checked);
}

TEST(Engine, RunUntilStopsAtLimit) {
  ws::Engine e;
  int fired = 0;
  e.at(1.0, [&] { ++fired; });
  e.at(5.0, [&] { ++fired; });
  e.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(e.drained());
  e.run();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(e.drained());
}

TEST(Engine, RunUntilAdvancesClockWhenIdle) {
  ws::Engine e;
  e.run_until(7.5);
  EXPECT_DOUBLE_EQ(e.now(), 7.5);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto trace = [] {
    ws::Engine e;
    std::vector<double> times;
    for (int i = 0; i < 100; ++i) {
      e.at(static_cast<double>((i * 37) % 50),
           [&times, &e] { times.push_back(e.now()); });
    }
    e.run();
    return times;
  };
  EXPECT_EQ(trace(), trace());
}

TEST(FifoResource, GrantsImmediatelyWhenIdle) {
  ws::FifoResource r;
  EXPECT_DOUBLE_EQ(r.reserve(5.0, 2.0), 5.0);
  EXPECT_DOUBLE_EQ(r.free_at(), 7.0);
  EXPECT_DOUBLE_EQ(r.wait_total(), 0.0);
}

TEST(FifoResource, QueuesOverlappingRequests) {
  ws::FifoResource r;
  EXPECT_DOUBLE_EQ(r.reserve(0.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(r.reserve(1.0, 3.0), 3.0);  // pushed behind the first
  EXPECT_DOUBLE_EQ(r.reserve(10.0, 1.0), 10.0);  // idle again
  EXPECT_DOUBLE_EQ(r.wait_total(), 2.0);
  EXPECT_DOUBLE_EQ(r.busy_total(), 7.0);
}

TEST(FifoResource, ZeroDurationIsAllowed) {
  ws::FifoResource r;
  EXPECT_DOUBLE_EQ(r.reserve(1.0, 0.0), 1.0);
  EXPECT_THROW(r.reserve(1.0, -1.0), wave::common::contract_error);
}

TEST(EngineStress, HundredThousandEventChurnIsExact) {
  // 100k-event calendar churn: 64 interleaved self-rescheduling chains
  // (steady near-future traffic, the DES pattern) plus a band of far
  // events. events_processed and the final clock are pinned — any
  // calendar implementation change (slab recycling, bucket calibration,
  // rescue paths) must leave both untouched.
  ws::Engine e;
  constexpr int kChains = 64;
  constexpr int kPerChain = 1562;           // 64 * 1562 = 99'968
  constexpr int kFarEvents = 32;            // ... + 32 = 100'000
  struct Chain {
    ws::Engine* engine;
    int* remaining;
    double period;
    double* last_seen;  // monotonicity probe
    void operator()() const {
      EXPECT_GE(engine->now(), *last_seen);
      *last_seen = engine->now();
      if (--*remaining > 0) engine->after(period, *this);
    }
  };
  int remaining[kChains];
  double last_seen = 0.0;
  for (int c = 0; c < kChains; ++c) {
    remaining[c] = kPerChain;
    e.at(0.0, Chain{&e, &remaining[c], 1.0 + 0.01 * c, &last_seen});
  }
  for (int i = 0; i < kFarEvents; ++i) {
    e.at(3000.0 + i, [&e, &last_seen] {
      EXPECT_GE(e.now(), last_seen);
      last_seen = e.now();
    });
  }

  // Split the run so run_until's peek path is exercised under load too.
  e.run_until(1000.0);
  EXPECT_GT(e.events_processed(), 0u);
  EXPECT_FALSE(e.drained());
  e.run();

  EXPECT_TRUE(e.drained());
  EXPECT_EQ(e.events_processed(), 100'000u);
  // Chain c's last event fires after (kPerChain - 1) periods; the far
  // band ends at 3031. The last chain event is at 1561 * 1.63 = 2544.43,
  // so the far band finishes last.
  EXPECT_DOUBLE_EQ(e.now(), 3000.0 + (kFarEvents - 1));
  for (int c = 0; c < kChains; ++c) EXPECT_EQ(remaining[c], 0);
}

TEST(EngineStress, EqualTimeBurstPreservesFifoAtScale) {
  // A World-startup-shaped burst: thousands of events at the same
  // instant must run in exact insertion order (the seq tie-break) no
  // matter how the calendar buckets them.
  ws::Engine e;
  std::vector<int> order;
  order.reserve(4096);
  for (int i = 0; i < 4096; ++i) {
    e.at(7.5, [&order, i] { order.push_back(i); });
  }
  e.run();
  ASSERT_EQ(order.size(), 4096u);
  for (int i = 0; i < 4096; ++i) ASSERT_EQ(order[i], i);
  EXPECT_EQ(e.events_processed(), 4096u);
  EXPECT_DOUBLE_EQ(e.now(), 7.5);
}

TEST(InlineTask, MoveInvokeConsumeAndReset) {
  int hits = 0;
  ws::InlineTask task([&hits] { ++hits; });
  EXPECT_TRUE(static_cast<bool>(task));

  ws::InlineTask moved = std::move(task);
  EXPECT_FALSE(static_cast<bool>(task));
  ASSERT_TRUE(static_cast<bool>(moved));
  moved();
  EXPECT_EQ(hits, 1);

  moved.consume();  // second dispatch, then empties the task
  EXPECT_EQ(hits, 2);
  EXPECT_FALSE(static_cast<bool>(moved));

  // reset destroys the capture exactly once.
  auto counter = std::make_shared<int>(0);
  ws::InlineTask holder([counter] { (void)counter; });
  EXPECT_EQ(counter.use_count(), 2);
  holder.reset();
  EXPECT_EQ(counter.use_count(), 1);
  EXPECT_FALSE(static_cast<bool>(holder));
}

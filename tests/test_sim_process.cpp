// Tests for the coroutine Process type: composition, lifetimes, exceptions.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/engine.h"
#include "sim/process.h"

namespace ws = wave::sim;

namespace {

/// Simple delay awaitable bound to an engine, for testing Process alone.
struct Delay {
  ws::Engine* engine;
  double duration;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    engine->after(duration, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

ws::Process leaf(ws::Engine& e, std::vector<double>& log) {
  co_await Delay{&e, 1.0};
  log.push_back(e.now());
  co_await Delay{&e, 2.0};
  log.push_back(e.now());
}

ws::Process parent(ws::Engine& e, std::vector<double>& log) {
  co_await Delay{&e, 0.5};
  co_await leaf(e, log);  // nested: parent resumes after the child finishes
  log.push_back(e.now());
}

ws::Process thrower(ws::Engine& e) {
  co_await Delay{&e, 1.0};
  throw std::runtime_error("boom");
}

ws::Process catcher(ws::Engine& e, bool& caught) {
  try {
    co_await thrower(e);
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

}  // namespace

TEST(Process, RunsToCompletion) {
  ws::Engine e;
  std::vector<double> log;
  ws::Process p = leaf(e, log);
  EXPECT_TRUE(p.valid());
  EXPECT_FALSE(p.finished());
  p.start();
  e.run();
  EXPECT_TRUE(p.finished());
  EXPECT_EQ(log, (std::vector<double>{1.0, 3.0}));
}

TEST(Process, NestedCompositionSequences) {
  ws::Engine e;
  std::vector<double> log;
  ws::Process p = parent(e, log);
  p.start();
  e.run();
  EXPECT_TRUE(p.finished());
  // leaf logs at 1.5 and 3.5 (offset by the parent's 0.5 delay), then the
  // parent logs immediately after the child completes.
  EXPECT_EQ(log, (std::vector<double>{1.5, 3.5, 3.5}));
}

TEST(Process, ExceptionsPropagateToParent) {
  ws::Engine e;
  bool caught = false;
  ws::Process p = catcher(e, caught);
  p.start();
  e.run();
  EXPECT_TRUE(caught);
  EXPECT_TRUE(p.finished());
  EXPECT_EQ(p.exception(), nullptr);  // handled inside
}

TEST(Process, TopLevelExceptionIsStored) {
  ws::Engine e;
  ws::Process p = thrower(e);
  p.start();
  e.run();
  EXPECT_TRUE(p.finished());
  ASSERT_NE(p.exception(), nullptr);
  EXPECT_THROW(std::rethrow_exception(p.exception()), std::runtime_error);
}

TEST(Process, MoveTransfersOwnership) {
  ws::Engine e;
  std::vector<double> log;
  ws::Process a = leaf(e, log);
  ws::Process b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing move
  EXPECT_TRUE(b.valid());
  b.start();
  e.run();
  EXPECT_TRUE(b.finished());
}

TEST(Process, DefaultConstructedIsInert) {
  ws::Process p;
  EXPECT_FALSE(p.valid());
  EXPECT_FALSE(p.finished());
  p.start();  // no-op, must not crash
}

TEST(Process, ManyConcurrentProcesses) {
  ws::Engine e;
  std::vector<double> log;
  std::vector<ws::Process> procs;
  for (int i = 0; i < 100; ++i) procs.push_back(leaf(e, log));
  for (auto& p : procs) p.start();
  e.run();
  for (auto& p : procs) EXPECT_TRUE(p.finished());
  EXPECT_EQ(log.size(), 200u);
}

// Tests for the §5.2 procurement metrics (R, X, R/X, R²/X).
#include <gtest/gtest.h>

#include "common/contracts.h"
#include "common/units.h"
#include "core/benchmarks.h"
#include "core/metrics.h"
#include "loggp/registry.h"

namespace wc = wave::core;
namespace wb = wave::core::benchmarks;

namespace {
const wave::loggp::CommModelRegistry kReg;
wc::Solver sweep3d_solver() {
  wb::Sweep3dConfig cfg;
  cfg.energy_groups = 30;
  return wc::Solver(wb::sweep3d(cfg), wc::MachineConfig::xt4_dual_core(),
                    kReg);
}
}  // namespace

TEST(Metrics, SimulationSecondsScalesWithTimesteps) {
  const auto solver = sweep3d_solver();
  const double one = wc::simulation_seconds(solver, 4096, 1);
  const double ten = wc::simulation_seconds(solver, 4096, 10);
  EXPECT_NEAR(ten, 10.0 * one, 1e-6 * ten);
}

TEST(Metrics, PartitionStudyShape) {
  const auto solver = sweep3d_solver();
  const auto points = wc::partition_study(solver, 32768, 100, 4096);
  ASSERT_EQ(points.size(), 4u);  // 1, 2, 4, 8 partitions
  EXPECT_EQ(points[0].partitions, 1);
  EXPECT_EQ(points[0].processors_per_job, 32768);
  EXPECT_EQ(points[3].partitions, 8);
  EXPECT_EQ(points[3].processors_per_job, 4096);
}

TEST(Metrics, XDefinition) {
  const auto solver = sweep3d_solver();
  const auto points = wc::partition_study(solver, 16384, 50, 4096);
  for (const auto& p : points) {
    EXPECT_NEAR(p.x_per_second * p.r_seconds / p.partitions, 1.0, 1e-12);
    EXPECT_NEAR(p.r_over_x / (p.r_seconds * p.r_seconds / p.partitions), 1.0,
                1e-12);
    EXPECT_NEAR(
        p.r2_over_x / (p.r_seconds * p.r_seconds * p.r_seconds / p.partitions),
        1.0, 1e-12);
  }
}

TEST(Metrics, SmallerPartitionsRunSlowerPerJob) {
  const auto solver = sweep3d_solver();
  const auto points = wc::partition_study(solver, 65536, 100, 1024);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].r_seconds, points[i - 1].r_seconds);
    EXPECT_LT(points[i].timesteps_per_month,
              points[i - 1].timesteps_per_month);
  }
}

TEST(Metrics, AggregateThroughputImprovesWithPartitioning) {
  // Diminishing single-job returns mean k jobs on P/k processors complete
  // more total work per unit time than 1 job on P (for the sizes of
  // interest) — the motivation for Fig 7.
  const auto solver = sweep3d_solver();
  const auto points = wc::partition_study(solver, 131072, 100, 8192);
  EXPECT_GT(points.back().x_per_second, points.front().x_per_second);
}

TEST(Metrics, R2CriterionPrefersLargerPartitions) {
  // Fig 8: R²/X weights single-job latency more, so its optimizer never
  // chooses more partitions than the R/X optimizer.
  const auto solver = sweep3d_solver();
  const auto points = wc::partition_study(solver, 131072, 100, 4096);
  const auto by_rx =
      wc::optimal_partition(points, wc::PartitionCriterion::MinimizeROverX);
  const auto by_r2x =
      wc::optimal_partition(points, wc::PartitionCriterion::MinimizeR2OverX);
  EXPECT_LE(by_r2x.partitions, by_rx.partitions);
  EXPECT_GE(by_rx.partitions, 1);
}

TEST(Metrics, OptimalPartitionRejectsEmpty) {
  EXPECT_THROW(wc::optimal_partition({}, wc::PartitionCriterion::MinimizeROverX),
               wave::common::contract_error);
}

TEST(Metrics, TimestepsPerMonthDefinition) {
  const auto solver = sweep3d_solver();
  const auto points = wc::partition_study(solver, 16384, 100, 16384);
  ASSERT_FALSE(points.empty());
  const auto& p = points[0];
  EXPECT_NEAR(p.timesteps_per_month,
              100.0 * wave::common::kSecPerMonth / p.r_seconds, 1e-6);
}

// Tests for the Table 1 communication equations and Table 2 parameters.
#include <gtest/gtest.h>

#include "common/contracts.h"
#include "loggp/backends.h"

namespace wl = wave::loggp;

namespace {
const wl::MachineParams kXt4 = wl::xt4();
const wl::LogGpModel kModel(kXt4);
}  // namespace

TEST(Table2, Xt4Values) {
  EXPECT_DOUBLE_EQ(kXt4.off.G, 0.0004);
  EXPECT_DOUBLE_EQ(kXt4.off.L, 0.305);
  EXPECT_DOUBLE_EQ(kXt4.off.o, 3.92);
  EXPECT_DOUBLE_EQ(kXt4.on.Gcopy, 0.000789);
  EXPECT_DOUBLE_EQ(kXt4.on.Gdma, 0.000072);
  EXPECT_DOUBLE_EQ(kXt4.on.o, 3.80);
  EXPECT_DOUBLE_EQ(kXt4.on.ocopy, 1.98);
  EXPECT_EQ(kXt4.eager_limit_bytes, 1024);
}

TEST(Table2, DerivedQuantities) {
  // 1/G = 2.5 GB/s inter-node bandwidth (§3.1).
  EXPECT_NEAR(1.0 / kXt4.off.G, 2.5e3, 1e-9);  // bytes/µs = MB/s / 1000
  // h = 2(L + oh) with negligible oh.
  EXPECT_DOUBLE_EQ(kXt4.off.handshake(), 0.61);
  // odma = o - ocopy (§3.2).
  EXPECT_NEAR(kXt4.on.odma(), 1.82, 1e-12);
}

TEST(Table2, Sp2IsOrdersOfMagnitudeSlower) {
  const wl::MachineParams sp2 = wl::sp2();
  EXPECT_GE(sp2.off.G / kXt4.off.G, 100.0);
  EXPECT_GE(sp2.off.L / kXt4.off.L, 10.0);
  EXPECT_GE(sp2.off.o / kXt4.off.o, 5.0);
}

TEST(CommModel, Equation1SmallOffNode) {
  // (1): o + S*G + L + o
  for (int s : {0, 1, 64, 512, 1024}) {
    const double expected = 3.92 + s * 0.0004 + 0.305 + 3.92;
    EXPECT_NEAR(kModel.total(s, wl::Placement::OffNode), expected, 1e-12);
  }
}

TEST(CommModel, Equation2LargeOffNode) {
  // (2): o + h + o + S*G + L + o
  for (int s : {1025, 4096, 12000}) {
    const double expected = 3.92 + 0.61 + 3.92 + s * 0.0004 + 0.305 + 3.92;
    EXPECT_NEAR(kModel.total(s, wl::Placement::OffNode), expected, 1e-12);
  }
}

TEST(CommModel, Equations3And4SendRecvOffNode) {
  // (3): send = recv = o for small messages.
  EXPECT_DOUBLE_EQ(kModel.send(512, wl::Placement::OffNode), 3.92);
  EXPECT_DOUBLE_EQ(kModel.recv(512, wl::Placement::OffNode), 3.92);
  // (4a): send = o + h.
  EXPECT_DOUBLE_EQ(kModel.send(2048, wl::Placement::OffNode), 3.92 + 0.61);
  // (4b): recv = L + o + S*G + L + o.
  EXPECT_NEAR(kModel.recv(2048, wl::Placement::OffNode),
              0.305 + 3.92 + 2048 * 0.0004 + 0.305 + 3.92, 1e-12);
}

TEST(CommModel, Equations5To8OnChip) {
  // (5): ocopy + S*Gcopy + ocopy.
  EXPECT_NEAR(kModel.total(800, wl::Placement::OnChip),
              1.98 + 800 * 0.000789 + 1.98, 1e-12);
  // (6): o + S*Gdma + ocopy.
  EXPECT_NEAR(kModel.total(4096, wl::Placement::OnChip),
              3.80 + 4096 * 0.000072 + 1.98, 1e-12);
  // (7): send = recv = ocopy.
  EXPECT_DOUBLE_EQ(kModel.send(100, wl::Placement::OnChip), 1.98);
  EXPECT_DOUBLE_EQ(kModel.recv(100, wl::Placement::OnChip), 1.98);
  // (8a): send = o.  (8b): recv = S*Gdma + ocopy.
  EXPECT_DOUBLE_EQ(kModel.send(5000, wl::Placement::OnChip), 3.80);
  EXPECT_NEAR(kModel.recv(5000, wl::Placement::OnChip),
              5000 * 0.000072 + 1.98, 1e-12);
}

TEST(CommModel, OnChipFasterThanOffNodeForAllSizes) {
  // §3.2: "the per-byte gap to move the data ... is lower on-chip than
  // off-node for all message sizes" — end-to-end on-chip is cheaper too.
  for (int s = 0; s <= 16384; s += 128)
    EXPECT_LT(kModel.total(s, wl::Placement::OnChip),
              kModel.total(s, wl::Placement::OffNode))
        << "S=" << s;
}

TEST(CommModel, CostsBundleAgrees) {
  const auto c = kModel.costs(3000, wl::Placement::OffNode);
  EXPECT_DOUBLE_EQ(c.send, kModel.send(3000, wl::Placement::OffNode));
  EXPECT_DOUBLE_EQ(c.recv, kModel.recv(3000, wl::Placement::OffNode));
  EXPECT_DOUBLE_EQ(c.total, kModel.total(3000, wl::Placement::OffNode));
}

TEST(CommModel, RejectsNegativeSize) {
  EXPECT_THROW(kModel.total(-1, wl::Placement::OffNode),
               wave::common::contract_error);
}

TEST(CommModel, ValidatesParameters) {
  wl::MachineParams bad = kXt4;
  bad.off.G = 0.0;
  EXPECT_THROW(wl::LogGpModel{bad}, wave::common::contract_error);
  bad = kXt4;
  bad.on.ocopy = bad.on.o + 1.0;  // ocopy > o impossible
  EXPECT_THROW(wl::LogGpModel{bad}, wave::common::contract_error);
  bad = kXt4;
  bad.eager_limit_bytes = 0;
  EXPECT_THROW(wl::LogGpModel{bad}, wave::common::contract_error);
}

// Property sweep: total time is non-decreasing in message size within each
// protocol regime, and the only discontinuity sits at the eager limit.
class CommMonotonicity
    : public ::testing::TestWithParam<wl::Placement> {};

TEST_P(CommMonotonicity, TotalNonDecreasingWithinRegimes) {
  const wl::Placement where = GetParam();
  double prev = kModel.total(0, where);
  for (int s = 1; s <= 1024; ++s) {
    const double cur = kModel.total(s, where);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
  prev = kModel.total(1025, where);
  for (int s = 1026; s <= 16384; s += 7) {
    const double cur = kModel.total(s, where);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST_P(CommMonotonicity, ProtocolJumpAtEagerLimit) {
  const wl::Placement where = GetParam();
  const double below = kModel.total(1024, where);
  const double above = kModel.total(1025, where);
  EXPECT_GT(above, below);
  // Off-node the jump is the handshake (o + h beyond the byte cost);
  // on-chip it is the DMA setup. Both exceed 0.5 µs on the XT4.
  EXPECT_GT(above - below, 0.5);
}

TEST_P(CommMonotonicity, SendPlusRecvNeverExceedsTotalPlusOverlap) {
  // The sender and receiver code paths overlap with the wire time; their
  // sum can exceed total only by at most the in-flight portion.
  const wl::Placement where = GetParam();
  for (int s : {16, 1024, 1025, 8192}) {
    const auto c = kModel.costs(s, where);
    EXPECT_LE(c.send, c.total);
    EXPECT_LE(c.recv, c.total + 2.0 * kXt4.off.L + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(BothPlacements, CommMonotonicity,
                         ::testing::Values(wl::Placement::OffNode,
                                           wl::Placement::OnChip));

// Unit tests for wave::topo — grids, node maps (Table 6 rules), torus.
#include <gtest/gtest.h>

#include "common/contracts.h"
#include "topology/grid.h"
#include "topology/node_map.h"
#include "topology/torus.h"

namespace wt = wave::topo;

TEST(Grid, RankCoordRoundTrip) {
  const wt::Grid g(4, 3);
  EXPECT_EQ(g.size(), 12);
  for (int r = 0; r < g.size(); ++r)
    EXPECT_EQ(g.rank_of(g.coord_of(r)), r);
  EXPECT_EQ(g.rank_of({1, 1}), 0);
  EXPECT_EQ(g.rank_of({4, 3}), 11);
}

TEST(Grid, Corners) {
  const wt::Grid g(5, 2);
  EXPECT_EQ(g.corner_nw(), (wt::Coord{1, 1}));
  EXPECT_EQ(g.corner_se(), (wt::Coord{5, 2}));
  EXPECT_EQ(g.corner_ne(), (wt::Coord{5, 1}));
  EXPECT_EQ(g.corner_sw(), (wt::Coord{1, 2}));
  EXPECT_EQ(g.wavefront_count(), 6);
}

TEST(Grid, RejectsBadInput) {
  EXPECT_THROW(wt::Grid(0, 1), wave::common::contract_error);
  const wt::Grid g(2, 2);
  EXPECT_THROW(g.rank_of({3, 1}), wave::common::contract_error);
  EXPECT_THROW(g.coord_of(4), wave::common::contract_error);
}

TEST(Grid, ClosestToSquare) {
  EXPECT_EQ(wt::closest_to_square(16).n(), 4);
  EXPECT_EQ(wt::closest_to_square(16).m(), 4);
  EXPECT_EQ(wt::closest_to_square(8).n(), 4);
  EXPECT_EQ(wt::closest_to_square(8).m(), 2);
  EXPECT_EQ(wt::closest_to_square(1).size(), 1);
  // Primes degrade to 1 x P.
  EXPECT_EQ(wt::closest_to_square(13).m(), 1);
}

TEST(Grid, ClosestToSquarePreservesSize) {
  for (int p = 1; p <= 300; ++p)
    EXPECT_EQ(wt::closest_to_square(p).size(), p) << "P=" << p;
}

TEST(Grid, BalancedFactorization) {
  EXPECT_TRUE(wt::has_balanced_factorization(4096, 2.0));
  EXPECT_TRUE(wt::has_balanced_factorization(8192, 2.0));
  EXPECT_FALSE(wt::has_balanced_factorization(13, 2.0));
}

TEST(NodeMap, SingleCoreEverythingOffNode) {
  const wt::Grid g(4, 4);
  const wt::NodeMap map(g, 1, 1);
  EXPECT_EQ(map.node_count(), 16);
  for (int r = 0; r < g.size(); ++r) {
    const wt::Coord c = g.coord_of(r);
    for (auto d : {wt::Direction::East, wt::Direction::West,
                   wt::Direction::North, wt::Direction::South})
      EXPECT_FALSE(map.is_on_node(c, d));
  }
}

// Table 6: for a 1 x 2 (Cx=1, Cy=2) node, communication is on-chip exactly
// when the mod conditions hold.
TEST(NodeMap, Table6RulesDualCore) {
  const wt::Grid g(4, 4);
  const wt::NodeMap map(g, /*cx=*/1, /*cy=*/2);
  for (int j = 1; j <= 4; ++j) {
    for (int i = 1; i <= 4; ++i) {
      const wt::Coord c{i, j};
      // SendE on-chip iff i mod Cx != 0 and Cx != 1 -> never for Cx = 1.
      EXPECT_FALSE(map.is_on_node(c, wt::Direction::East));
      // ReceiveN on-chip iff j mod Cy != 1 (j even for Cy = 2).
      if (j > 1) {
        EXPECT_EQ(map.is_on_node(c, wt::Direction::North), j % 2 == 0)
            << "i=" << i << " j=" << j;
      }
      // Send south on-chip iff j mod Cy != 0 (sender's own row test).
      if (j < 4) {
        EXPECT_EQ(map.is_on_node(c, wt::Direction::South), j % 2 != 0);
      }
    }
  }
}

TEST(NodeMap, Table6RulesQuadCore) {
  const wt::Grid g(8, 8);
  const wt::NodeMap map(g, /*cx=*/2, /*cy=*/2);
  EXPECT_EQ(map.node_count(), 16);
  for (int j = 1; j <= 8; ++j) {
    for (int i = 1; i <= 8; ++i) {
      const wt::Coord c{i, j};
      if (i < 8) {
        EXPECT_EQ(map.is_on_node(c, wt::Direction::East), i % 2 != 0);
      }
      if (i > 1) {
        EXPECT_EQ(map.is_on_node(c, wt::Direction::West), i % 2 != 1);
      }
      if (j > 1) {
        EXPECT_EQ(map.is_on_node(c, wt::Direction::North), j % 2 != 1);
      }
      if (j < 8) {
        EXPECT_EQ(map.is_on_node(c, wt::Direction::South), j % 2 != 0);
      }
    }
  }
}

TEST(NodeMap, CoreSlotsAreDense) {
  const wt::Grid g(8, 8);
  const wt::NodeMap map(g, 2, 4);
  EXPECT_EQ(map.cores_per_node(), 8);
  std::vector<int> seen(map.node_count() * 8, 0);
  for (int r = 0; r < g.size(); ++r) {
    const wt::Coord c = g.coord_of(r);
    const int node = map.node_of(c);
    const int slot = map.core_slot(c);
    ASSERT_GE(slot, 0);
    ASSERT_LT(slot, 8);
    ++seen[node * 8 + slot];
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(NodeMap, GridEdgeNeverOnNode) {
  const wt::Grid g(6, 6);
  const wt::NodeMap map(g, 2, 2);
  EXPECT_FALSE(map.is_on_node({1, 1}, wt::Direction::West));
  EXPECT_FALSE(map.is_on_node({6, 6}, wt::Direction::South));
}

TEST(Torus, IdCoordRoundTrip) {
  const wt::Torus3D t(4, 3, 2);
  EXPECT_EQ(t.node_count(), 24);
  for (int id = 0; id < t.node_count(); ++id)
    EXPECT_EQ(t.id_of(t.coord_of(id)), id);
}

TEST(Torus, WrapAroundDistance) {
  const wt::Torus3D t(8, 8, 8);
  EXPECT_EQ(t.hops({0, 0, 0}, {1, 0, 0}), 1);
  EXPECT_EQ(t.hops({0, 0, 0}, {7, 0, 0}), 1);  // wraps
  EXPECT_EQ(t.hops({0, 0, 0}, {4, 4, 4}), 12);
  EXPECT_EQ(t.hops({2, 3, 4}, {2, 3, 4}), 0);
}

TEST(Torus, FittingIsSufficientAndNearCubic) {
  for (int nodes : {1, 7, 64, 100, 1024, 5000}) {
    const wt::Torus3D t = wt::Torus3D::fitting(nodes);
    EXPECT_GE(t.node_count(), nodes);
    const int maxd = std::max({t.dx(), t.dy(), t.dz()});
    const int mind = std::min({t.dx(), t.dy(), t.dz()});
    EXPECT_LE(maxd - mind, 2) << "nodes=" << nodes;
  }
}

TEST(Torus, GridEmbeddingKeepsRowNeighboursAdjacent) {
  const wt::Torus3D t(8, 8, 8);
  // Grid nodes in one row map to adjacent torus coordinates.
  for (int id = 0; id + 1 < 8; ++id) {
    const auto a = t.embed_grid_node(id, /*grid_nodes_x=*/8);
    const auto b = t.embed_grid_node(id + 1, 8);
    EXPECT_EQ(t.hops(a, b), 1);
  }
}

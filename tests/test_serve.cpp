// The wave-serve daemon: protocol parsing (defensive JSON, typed field
// validation), the request/response loop over a real AF_UNIX socket,
// bounded admission with shedding and opt-in degradation, and the
// accounting identity every admitted request resolves into exactly one
// outcome counter.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/json.h"
#include "serve/protocol.h"
#include "serve_test_util.h"
#include "wave/serve.h"

namespace ws = wave::serve;
using serve_test::ServerFixture;

// ---- defensive JSON ---------------------------------------------------------

TEST(ServeJson, ParsesTheProtocolSubset) {
  ws::JsonValue v;
  std::string error;
  ASSERT_TRUE(parse_json(
      R"({"id":"r1","n":-2.5e3,"t":true,"s":"a\n\u0041","list":[1,2]})", v,
      error))
      << error;
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("id")->text, "r1");
  EXPECT_EQ(v.find("n")->number, -2500.0);
  EXPECT_TRUE(v.find("t")->boolean);
  EXPECT_EQ(v.find("s")->text, "a\nA");
  EXPECT_EQ(v.find("list")->items.size(), 2u);
  EXPECT_EQ(v.find("nope"), nullptr);
}

TEST(ServeJson, RejectsHostileInputWithPositionedErrors) {
  ws::JsonValue v;
  std::string error;
  // A depth bomb far past the bound must fail parsing, not the stack.
  std::string bomb(100, '[');
  EXPECT_FALSE(parse_json(bomb, v, error));
  EXPECT_NE(error.find("too deep"), std::string::npos) << error;

  for (const char* bad : {
           "",                       // nothing
           "{\"a\":1} trailing",     // trailing garbage
           "{\"a\":}",               // missing value
           "{\"a\" 1}",              // missing colon
           "\"unterminated",         // unterminated string
           "\"bad\\q escape\"",      // unknown escape
           "\"\\ud800\"",            // lone surrogate
           "nul",                    // truncated keyword
           "{\"a\":1,}",             // trailing comma
       }) {
    EXPECT_FALSE(parse_json(bad, v, error)) << bad;
    EXPECT_NE(error.find("offset"), std::string::npos) << error;
  }
}

TEST(ServeJson, NumberRenderingRoundTripsBits) {
  for (double d : {12260.344656000001, 1.0 / 3.0, 0.0, -6.25e-3}) {
    std::string out;
    ws::append_json_number(out, d);
    ws::JsonValue v;
    std::string error;
    ASSERT_TRUE(parse_json(out, v, error)) << out;
    EXPECT_EQ(v.number, d) << out;  // exact: %.17g round-trips doubles
  }
}

// ---- request parsing --------------------------------------------------------

TEST(ServeProtocol, ParsesAFullEvalRequest) {
  ws::Request r;
  std::string error;
  ASSERT_TRUE(ws::parse_request(
      R"({"id":"e1","op":"eval","machine":"xt4-dual","workload":"wavefront",)"
      R"("engine":"sim","processors":64,"iterations":2,"deadline_ms":250,)"
      R"("degrade":true,"params":{"alpha":0.5}})",
      r, error))
      << error;
  EXPECT_EQ(r.id, "e1");
  EXPECT_EQ(r.op, ws::Request::Op::Eval);
  EXPECT_EQ(r.machine, "xt4-dual");
  EXPECT_EQ(r.engine, "sim");
  EXPECT_TRUE(r.expensive());
  EXPECT_EQ(r.processors, 64);
  EXPECT_EQ(r.deadline_ms, 250.0);
  EXPECT_TRUE(r.degrade);
  ASSERT_EQ(r.params.size(), 1u);
  EXPECT_EQ(r.params[0].first, "alpha");
}

TEST(ServeProtocol, RejectsBadRequestsNamingTheField) {
  struct Case {
    const char* line;
    const char* needle;  // must appear in the diagnostic
  };
  for (const Case& c : std::vector<Case>{
           {R"({"op":"fly"})", "op"},
           {R"({"id":7,"op":"ping"})", "id"},
           {R"({"op":"eval","processors":"many"})", "processors"},
           {R"({"op":"eval","processors":2.5})", "processors"},
           {R"({"op":"eval","engine":"magic"})", "engine"},
           {R"({"op":"eval","deadline_ms":-5})", "deadline_ms"},
           // 1e308 ms is finite but would overflow the ms->us cast: the
           // parser must bound deadlines, not just sign-check them.
           {R"({"op":"eval","deadline_ms":1e308})", "deadline_ms"},
           {R"({"op":"eval","deadline_ms":86400001})", "deadline_ms"},
           {R"({"op":"eval","degrade":"yes"})", "degrade"},
           {R"({"op":"eval","params":{"a":"b"}})", "param 'a'"},
           {R"([1,2,3])", "object"},
       }) {
    ws::Request r;
    std::string error;
    EXPECT_FALSE(ws::parse_request(c.line, r, error)) << c.line;
    EXPECT_NE(error.find(c.needle), std::string::npos)
        << c.line << " -> " << error;
  }
}

// ---- the live server --------------------------------------------------------

TEST(ServeServer, AnswersPingEvalAndCachesRepeats) {
  ServerFixture f;
  EXPECT_TRUE(f.call(R"({"id":"p","op":"ping"})").ok);

  const ws::Response first =
      f.call(R"({"id":"a","op":"eval","processors":256})");
  ASSERT_TRUE(first.ok) << first.raw;
  EXPECT_GT(first.time_us, 0.0);
  const ws::Response second =
      f.call(R"({"id":"b","op":"eval","processors":256})");
  ASSERT_TRUE(second.ok);
  // The repeat is a cache hit and the rendered payload is byte-identical
  // modulo the echoed id.
  std::string a = first.raw, b = second.raw;
  a.replace(a.find("\"a\""), 3, "\"x\"");
  b.replace(b.find("\"b\""), 3, "\"x\"");
  EXPECT_EQ(a, b);
  EXPECT_EQ(f.server->cache_stats().hits, 1u);
}

TEST(ServeServer, MetricsOpReturnsParseablePrometheusText) {
  ServerFixture f;
  ASSERT_TRUE(f.call(R"({"id":"p","op":"ping"})").ok);
  ASSERT_TRUE(f.call(R"({"id":"a","op":"eval","processors":64})").ok);
  ASSERT_TRUE(f.call(R"({"id":"b","op":"eval","processors":64})").ok);

  const ws::Response r = f.call(R"({"id":"mx","op":"metrics"})");
  ASSERT_TRUE(r.ok) << r.raw;

  // The response is one JSON object whose "metrics" member carries the
  // exposition text — re-parse the raw line with the protocol parser so
  // the escaping round-trips exactly.
  ws::JsonValue root;
  std::string error;
  ASSERT_TRUE(parse_json(r.raw, root, error)) << error;
  const ws::JsonValue* metrics = root.find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(metrics->is_string());
  const std::string& text = metrics->text;

  // One scrape covers both registries: the daemon's per-op latency and
  // admission instruments, and the EvalService's per-shard cache
  // histograms (disjoint name sets, concatenated exposition).
  for (const char* required :
       {"# TYPE serve_op_eval_latency_us histogram",
        "serve_op_eval_latency_us_count 2", "serve_op_ping_latency_us_count",
        "serve_shed_total 0", "serve_watchdog_fires_total 0",
        "service_shard0_hit_latency_us", "_bucket{le=\"+Inf\"}"}) {
    EXPECT_NE(text.find(required), std::string::npos)
        << "missing: " << required;
  }
  // Every non-comment line is `name[{labels}] value` — the metric name
  // stops at a space or a label brace, and no stray JSON escapes survive
  // the round-trip.
  std::istringstream lines(text);
  std::string line;
  int samples = 0;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    ASSERT_NE(line.rfind(' '), std::string::npos) << line;
    const auto name_end = line.find_first_not_of(
        "abcdefghijklmnopqrstuvwxyz0123456789_");
    ASSERT_NE(name_end, std::string::npos) << line;
    EXPECT_TRUE(line[name_end] == ' ' || line[name_end] == '{') << line;
    EXPECT_EQ(line.find('\\'), std::string::npos) << line;
    ++samples;
  }
  EXPECT_GT(samples, 10);
}

TEST(ServeServer, StatsCarriesUptimeAndPerOpLatencySummaries) {
  ServerFixture f;
  ASSERT_TRUE(f.call(R"({"id":"a","op":"eval","processors":64})").ok);

  const ws::Response r = f.call(R"({"id":"st","op":"stats"})");
  ASSERT_TRUE(r.ok) << r.raw;
  ws::JsonValue root;
  std::string error;
  ASSERT_TRUE(parse_json(r.raw, root, error)) << error;

  const ws::JsonValue* serve = root.find("serve");
  ASSERT_NE(serve, nullptr);
  const ws::JsonValue* uptime = serve->find("uptime_ms");
  ASSERT_NE(uptime, nullptr);
  EXPECT_GE(uptime->number, 0.0);

  const ws::JsonValue* latency = root.find("latency");
  ASSERT_NE(latency, nullptr);
  const ws::JsonValue* eval = latency->find("eval");
  ASSERT_NE(eval, nullptr) << r.raw;
  EXPECT_DOUBLE_EQ(eval->find("count")->number, 1.0);
  EXPECT_GT(eval->find("p99_us")->number, 0.0);
}

TEST(ServeServer, MalformedOversizedAndUnknownRequestsGetStructuredErrors) {
  wave::ServeOptions options;
  options.max_request_bytes = 256;
  ServerFixture f(options);

  ws::Response r = f.call("not json at all");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error_code, "invalid_request");

  r = f.call(R"({"id":"u","op":"teleport"})");
  EXPECT_EQ(r.error_code, "invalid_request");

  // An oversized line is rejected once and fully discarded; the next
  // request on the same connection still works.
  r = f.call("{\"id\":\"big\",\"pad\":\"" + std::string(500, 'x') + "\"}");
  EXPECT_EQ(r.error_code, "invalid_request");
  EXPECT_TRUE(f.call(R"({"id":"after","op":"ping"})").ok);

  r = f.call(R"({"id":"m","op":"eval","machine":"no-such-machine"})");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error_code, "not_found");
  EXPECT_NE(r.error_message.find("no-such-machine"), std::string::npos);
}

TEST(ServeServer, ShedsDesOverloadAndDegradesOptIns) {
  wave::ServeOptions options;
  options.workers = 1;
  options.des_queue_limit = 1;
  ServerFixture f(options);

  // Occupy the worker and the single DES slot with slow simulation runs,
  // then race in more DES requests: without degrade they are shed with a
  // retry hint; with degrade they come back analytic, flagged. The pause
  // between the two occupiers lets the worker dequeue the first, so the
  // second deterministically takes the one DES slot instead of racing the
  // worker's wakeup and getting shed itself.
  ASSERT_TRUE(f.client
                  .send_line("{\"id\":\"slow0\",\"op\":\"eval\","
                             "\"engine\":\"sim\",\"processors\":1024,"
                             "\"iterations\":2}")
                  .is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(f.client
                  .send_line("{\"id\":\"slow1\",\"op\":\"eval\","
                             "\"engine\":\"sim\",\"processors\":1024,"
                             "\"iterations\":2}")
                  .is_ok());
  int shed = 0, degraded = 0, completed = 0;
  for (int i = 0; i < 8; ++i) {
    const bool opt_in = (i % 2) == 1;
    ASSERT_TRUE(f.client
                    .send_line("{\"id\":\"r" + std::to_string(i) +
                               "\",\"op\":\"eval\",\"engine\":\"sim\","
                               "\"processors\":64" +
                               (opt_in ? ",\"degrade\":true" : "") + "}")
                    .is_ok());
  }
  for (int i = 0; i < 10; ++i) {
    auto reply = f.client.read_line();
    ASSERT_TRUE(reply.ok()) << reply.status().to_string();
    auto response = ws::Client::parse_response(reply.value());
    ASSERT_TRUE(response.ok());
    if (response.value().degraded) {
      ++degraded;
    } else if (response.value().ok) {
      ++completed;
    } else {
      EXPECT_EQ(response.value().error_code, "shed") << response.value().raw;
      EXPECT_GT(response.value().retry_after_ms, 0u) << response.value().raw;
      ++shed;
    }
  }
  EXPECT_GT(shed, 0);
  EXPECT_GT(degraded, 0);
  EXPECT_GE(completed, 2);  // at least the two occupiers finish

  const wave::ServeStats stats = f.server->stats();
  EXPECT_EQ(stats.shed, static_cast<std::uint64_t>(shed));
  EXPECT_EQ(stats.degraded, static_cast<std::uint64_t>(degraded));
}

TEST(ServeServer, NonReadingFloodClientCannotStallTheService) {
  // One worker, wedged for 60 s on the first dequeue (interruptible at
  // shutdown), and a one-slot DES queue: every further DES request is
  // shed. The flood client sends thousands of them and never reads a
  // reply, so the shed responses overflow its socket buffer. The
  // regression this guards: responses used to be sent with blocking
  // send() while holding queue_mutex, so this exact client wedged every
  // admission and dequeue in the daemon.
  wave::ServeOptions options;
  options.workers = 1;
  options.des_queue_limit = 1;
  wave::serve::FaultPlan::Spec spec;
  spec.stall_worker_permille = 1000;
  spec.stall_ms = 60000;
  ServerFixture f(options, spec);

  ws::Client flood;
  ASSERT_TRUE(flood.connect(f.options.socket_path).is_ok());
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(flood
                    .send_line("{\"id\":\"f" + std::to_string(i) +
                               "\",\"op\":\"eval\",\"engine\":\"sim\","
                               "\"processors\":64}")
                    .is_ok());
  }

  // A well-behaved client must still get through: pings (reader path),
  // and an admitted eval whose deadline the watchdog answers — together
  // they prove neither queue_mutex nor watch_mutex is wedged.
  ws::Client good;
  ASSERT_TRUE(good.connect(f.options.socket_path).is_ok());
  const auto pong = good.call(R"({"id":"g","op":"ping"})");
  ASSERT_TRUE(pong.ok()) << pong.status().to_string();
  EXPECT_TRUE(pong.value().ok);
  const auto expired = good.call(
      R"({"id":"ge","op":"eval","processors":128,"deadline_ms":300})");
  ASSERT_TRUE(expired.ok()) << expired.status().to_string();
  EXPECT_EQ(expired.value().error_code, "deadline_exceeded")
      << expired.value().raw;
  EXPECT_GT(f.server->stats().shed, 4000u);
}

TEST(ServeServer, AccountingIdentityHoldsAtIdle) {
  ServerFixture f;
  // A mixed bag of outcomes: ok, cache hit, invalid, eval error.
  f.call(R"({"id":"1","op":"ping"})");
  f.call(R"({"id":"2","op":"eval","processors":64})");
  f.call(R"({"id":"3","op":"eval","processors":64})");
  f.call("garbage");
  f.call(R"({"id":"4","op":"eval","machine":"missing"})");
  f.call(R"({"id":"5","op":"stats"})");

  const wave::ServeStats s = f.server->stats();
  EXPECT_EQ(s.requests, 6u);
  EXPECT_EQ(s.requests, s.ok + s.degraded + s.shed + s.deadline_exceeded +
                            s.invalid + s.eval_errors +
                            s.snapshot_write_failures);
  EXPECT_EQ(s.invalid, 1u);
  EXPECT_EQ(s.eval_errors, 1u);
}

TEST(ServeServer, StopIsIdempotentAndDropsTheSocket) {
  ServerFixture f;
  EXPECT_TRUE(f.server->running());
  f.server->stop();
  EXPECT_FALSE(f.server->running());
  f.server->stop();  // second stop is a no-op
  // The socket file is gone; a fresh client cannot connect.
  wave::serve::Client late;
  EXPECT_FALSE(late.connect(f.options.socket_path).is_ok());
}

TEST(ServeServer, ShutdownOpReleasesWait) {
  ServerFixture f;
  ASSERT_TRUE(f.call(R"({"id":"q","op":"shutdown"})").ok);
  f.server->wait();  // must return promptly instead of blocking forever
  f.server->stop();
  EXPECT_FALSE(f.server->running());
}

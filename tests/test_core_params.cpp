// Tests for the Table 3 application parameters and Fig 2 sweep structures.
#include <gtest/gtest.h>

#include "common/contracts.h"
#include "core/app_params.h"
#include "core/benchmarks.h"
#include "core/sweep_structure.h"

namespace wc = wave::core;
namespace wb = wave::core::benchmarks;

TEST(SweepStructure, LuMatchesTable3) {
  const auto s = wc::SweepStructure::lu();
  EXPECT_EQ(s.nsweeps(), 2);
  EXPECT_EQ(s.nfull(), 2);
  EXPECT_EQ(s.ndiag(), 0);
}

TEST(SweepStructure, Sweep3dMatchesTable3) {
  const auto s = wc::SweepStructure::sweep3d();
  EXPECT_EQ(s.nsweeps(), 8);
  EXPECT_EQ(s.nfull(), 2);
  EXPECT_EQ(s.ndiag(), 2);
}

TEST(SweepStructure, ChimaeraMatchesTable3) {
  const auto s = wc::SweepStructure::chimaera();
  EXPECT_EQ(s.nsweeps(), 8);
  EXPECT_EQ(s.nfull(), 4);
  EXPECT_EQ(s.ndiag(), 2);
}

TEST(SweepStructure, ConsecutiveSweepOriginsChain) {
  // In all three codes each sweep starts where pipelining allows: sweep k+1
  // of a pair originates at the corner opposite sweep k's origin.
  for (const auto& s : {wc::SweepStructure::sweep3d(),
                        wc::SweepStructure::chimaera()}) {
    const auto& sweeps = s.sweeps();
    EXPECT_EQ(sweeps[0].origin, wc::SweepOrigin::NorthWest);
    EXPECT_EQ(sweeps[1].origin, wc::SweepOrigin::SouthEast);
  }
}

TEST(SweepStructure, PipelinedEnergyGroups) {
  // §5.5: 30 groups -> 240 sweeps with ndiag = 2 and nfull = 2.
  const auto s = wc::SweepStructure::sweep3d_pipelined_groups(30);
  EXPECT_EQ(s.nsweeps(), 240);
  EXPECT_EQ(s.nfull(), 2);
  EXPECT_EQ(s.ndiag(), 2);
  // One group degenerates to plain Sweep3D counts.
  const auto one = wc::SweepStructure::sweep3d_pipelined_groups(1);
  EXPECT_EQ(one.nsweeps(), 8);
  EXPECT_EQ(one.nfull(), 2);
  EXPECT_EQ(one.ndiag(), 2);
}

TEST(SweepStructure, LastSweepMustComplete) {
  EXPECT_THROW(
      wc::SweepStructure({{wc::SweepOrigin::NorthWest,
                           wc::SweepPrecedence::OriginFree}}),
      wave::common::contract_error);
  EXPECT_THROW(wc::SweepStructure(std::vector<wc::Sweep>{}),
               wave::common::contract_error);
}

TEST(AppParams, ValidateRejectsBadDomains) {
  wc::AppParams app = wb::chimaera();
  app.nx = 0;
  EXPECT_THROW(app.validate(), wave::common::contract_error);
  app = wb::chimaera();
  app.htile = 0;
  EXPECT_THROW(app.validate(), wave::common::contract_error);
  app = wb::chimaera();
  app.htile = app.nz + 1;
  EXPECT_THROW(app.validate(), wave::common::contract_error);
  app = wb::chimaera();
  app.wg = -1.0;
  EXPECT_THROW(app.validate(), wave::common::contract_error);
  app = wb::chimaera();
  app.iterations_per_timestep = 0;
  EXPECT_THROW(app.validate(), wave::common::contract_error);
}

TEST(AppParams, MessageSizesFollowTable3) {
  // Chimaera: 8 * #angles(10) * Htile(1) * Ny/m east-west.
  const wc::AppParams chim = wb::chimaera();
  EXPECT_EQ(chim.message_bytes_ew(16, 16), 80 * 240 / 16);
  EXPECT_EQ(chim.message_bytes_ns(16, 16), 80 * 240 / 16);
  // Non-square grids use the matching dimension.
  EXPECT_EQ(chim.message_bytes_ew(32, 8), 80 * 240 / 8);
  EXPECT_EQ(chim.message_bytes_ns(32, 8), 80 * 240 / 32);
  // LU: 40 bytes per boundary cell, Htile = 1.
  const wc::AppParams lu = wb::lu();
  EXPECT_EQ(lu.message_bytes_ew(9, 9), 40 * 18);
}

TEST(AppParams, Sweep3dHtileFromAngleBlocking) {
  // Htile = mk * mmi / mmo (§4.1): mk=10, mmi=3, mmo=6 -> 5.
  wb::Sweep3dConfig cfg;
  cfg.mk = 10;
  cfg.mmi = 3;
  cfg.mmo = 6;
  const wc::AppParams app = wb::sweep3d(cfg);
  EXPECT_DOUBLE_EQ(app.htile, 5.0);
  // Message payload: 8 * mmo * Htile * Ny/m = 8 * mk * mmi * Ny/m, i.e.
  // the mmi angles actually sent per mk-cell block.
  EXPECT_EQ(app.message_bytes_ew(100, 100),
            8 * 10 * 3 * 10);  // Ny/m = 1000/100
}

TEST(AppParams, Sweep3dRejectsIndivisibleAngleBlocks) {
  wb::Sweep3dConfig cfg;
  cfg.mmi = 4;
  cfg.mmo = 6;
  EXPECT_THROW(wb::sweep3d(cfg), wave::common::contract_error);
}

TEST(AppParams, TilesPerStack) {
  wb::Sweep3dConfig cfg;
  cfg.nz = 1000;
  cfg.mk = 4;  // Htile = 2
  EXPECT_DOUBLE_EQ(wb::sweep3d(cfg).tiles_per_stack(), 500.0);
}

TEST(Benchmarks, NonWavefrontPhases) {
  EXPECT_EQ(wb::sweep3d().nonwavefront.allreduce_count, 2);
  EXPECT_FALSE(wb::sweep3d().nonwavefront.has_stencil);
  EXPECT_EQ(wb::chimaera().nonwavefront.allreduce_count, 1);
  EXPECT_TRUE(wb::lu().nonwavefront.has_stencil);
  EXPECT_EQ(wb::lu().nonwavefront.allreduce_count, 0);
}

TEST(Benchmarks, IterationCounts) {
  EXPECT_EQ(wb::chimaera().iterations_per_timestep, 419);  // §5 benchmark
  EXPECT_EQ(wb::sweep3d().iterations_per_timestep, 120);   // §5 choice
  EXPECT_EQ(wb::sweep3d_20m().iterations_per_timestep, 480);
}

TEST(Benchmarks, Sweep3d20mProblemSize) {
  const auto app = wb::sweep3d_20m();
  EXPECT_NEAR(app.nx * app.ny * app.nz, 2.0e7, 2.0e6);
}

TEST(Benchmarks, PreComputeOnlyInLu) {
  EXPECT_GT(wb::lu().wg_pre, 0.0);
  EXPECT_DOUBLE_EQ(wb::sweep3d().wg_pre, 0.0);
  EXPECT_DOUBLE_EQ(wb::chimaera().wg_pre, 0.0);
}

TEST(Benchmarks, MessageBytesAtLeastOne) {
  // Extremely fine decompositions still produce a 1-byte boundary message.
  const wc::AppParams chim = wb::chimaera();
  EXPECT_GE(chim.message_bytes_ew(10000, 10000), 1);
}

// Parameter sweep: Htile scales the per-message payload linearly for the
// transport codes (Table 3 message-size rows).
class HtileMessageScaling : public ::testing::TestWithParam<int> {};

TEST_P(HtileMessageScaling, PayloadLinearInHtile) {
  const int mk = GetParam();
  wb::Sweep3dConfig cfg;
  cfg.mk = mk;
  const wc::AppParams app = wb::sweep3d(cfg);
  const wc::AppParams base = wb::sweep3d();
  const double ratio = app.htile / base.htile;
  EXPECT_NEAR(static_cast<double>(app.message_bytes_ew(50, 50)),
              ratio * base.message_bytes_ew(50, 50), 1.0);
}

INSTANTIATE_TEST_SUITE_P(TileHeights, HtileMessageScaling,
                         ::testing::Values(2, 4, 6, 8, 10));

#!/bin/sh
# Measures the repository's perf trajectory point and (re)writes the
# committed BENCH_*.json. Runs bench/perf_sweep twice — the full grid (the
# headline events/sec and points/sec numbers) and --quick (the small grid
# CI compares against, tools/check_perf.sh) — plus bench/serve_load twice
# (full and --quick) for the wave-serve daemon section, and assembles the
# trajectory file from all four plus the recorded pre-optimization
# baseline.
#
# Usage: tools/run_perf.sh [build-dir] [out.json]
#   build-dir  default: build   (needs bench/perf_sweep and
#              bench/serve_load built, Release!)
#   out.json   default: BENCH_pr10.json
#
# The baseline section is a constant: it was measured at PR3 time by
# rebuilding the pre-PR3 implementation (commit 23832a9) with this same
# bench and running it interleaved with the optimized build on one
# machine. It cannot be re-measured from this checkout — do not edit it
# unless you repeat that protocol; `current`/`quick` are re-measured on
# every run of this script.
set -eu

build="${1:-build}"
out="${2:-BENCH_pr10.json}"
sweep="$build/bench/perf_sweep"
serve="$build/bench/serve_load"

for bin in "$sweep" "$serve"; do
  if [ ! -x "$bin" ]; then
    echo "error: $bin not found or not executable (build with" \
         "cmake -B $build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build $build)" >&2
    exit 1
  fi
done

tmp_full=$(mktemp) || exit 1
tmp_quick=$(mktemp) || exit 1
tmp_serve=$(mktemp) || exit 1
tmp_serve_quick=$(mktemp) || exit 1
trap 'rm -f "$tmp_full" "$tmp_quick" "$tmp_serve" "$tmp_serve_quick"' EXIT

echo "== perf_sweep (full grid, ~30s) =="
"$sweep" --out="$tmp_full"
echo
echo "== perf_sweep --quick (CI reference) =="
"$sweep" --quick --out="$tmp_quick"
echo
echo "== serve_load (wave-serve daemon, full) =="
"$serve" --out="$tmp_serve"
echo
echo "== serve_load --quick (CI reference) =="
"$serve" --quick --out="$tmp_serve_quick"

# Key-set parity: --quick must emit exactly the keys the full run emits.
# tools/check_perf.sh gates on the quick file; a key present only in the
# full output would let a gate go silently unenforced in CI.
keys() { awk -F': ' '$1 ~ /^[[:space:]]*"/ { gsub(/[[:space:]"]/, "", $1); print $1 }' "$1" | sort; }
if [ "$(keys "$tmp_full")" != "$(keys "$tmp_quick")" ]; then
  echo "error: perf_sweep --quick and full runs emit different JSON key sets:" >&2
  keys "$tmp_full" > "$tmp_full.keys"; keys "$tmp_quick" > "$tmp_quick.keys"
  diff "$tmp_full.keys" "$tmp_quick.keys" >&2 || true
  rm -f "$tmp_full.keys" "$tmp_quick.keys"
  exit 1
fi
if [ "$(keys "$tmp_serve")" != "$(keys "$tmp_serve_quick")" ]; then
  echo "error: serve_load --quick and full runs emit different JSON key sets:" >&2
  keys "$tmp_serve" > "$tmp_serve.keys"; keys "$tmp_serve_quick" > "$tmp_serve_quick.keys"
  diff "$tmp_serve.keys" "$tmp_serve_quick.keys" >&2 || true
  rm -f "$tmp_serve.keys" "$tmp_serve_quick.keys"
  exit 1
fi

# Pulls "key": value out of a flat perf_sweep JSON. Anchored to the whole
# field, so one key can never match another key containing it.
metric() { # file key
  awk -F': ' -v key="\"$2\"" \
    '$1 ~ ("^[[:space:]]*" key "$") { gsub(/[,\r]/, "", $2); print $2 }' "$1"
}

full_des=$(metric "$tmp_full" des_events_per_sec)
full_engine=$(metric "$tmp_full" engine_events_per_sec)
full_model=$(metric "$tmp_full" model_points_per_sec)
full_batch=$(metric "$tmp_full" model_batch_points_per_sec)
quick_des=$(metric "$tmp_quick" des_events_per_sec)
quick_engine=$(metric "$tmp_quick" engine_events_per_sec)
quick_model=$(metric "$tmp_quick" model_points_per_sec)
quick_batch=$(metric "$tmp_quick" model_batch_points_per_sec)
svc_cold=$(metric "$tmp_full" service_cold_evals_per_sec)
svc_hits=$(metric "$tmp_full" service_hits_per_sec)
svc_speedup=$(metric "$tmp_full" service_hit_speedup)
hw_threads=$(metric "$tmp_full" hardware_threads)
par_threads=$(metric "$tmp_full" sim_parallel_threads)
par_serial=$(metric "$tmp_full" sim_serial_events_per_sec)
par_events=$(metric "$tmp_full" sim_parallel_events_per_sec)
par_speedup=$(metric "$tmp_full" sim_parallel_speedup)
quick_par_serial=$(metric "$tmp_quick" sim_serial_events_per_sec)
quick_par_events=$(metric "$tmp_quick" sim_parallel_events_per_sec)
obs_plain=$(metric "$tmp_full" obs_uninstrumented_des_events_per_sec)
obs_instr=$(metric "$tmp_full" obs_instrumented_des_events_per_sec)
obs_traced=$(metric "$tmp_full" obs_traced_des_events_per_sec)
obs_spans=$(metric "$tmp_full" obs_trace_spans)
quick_obs_plain=$(metric "$tmp_quick" obs_uninstrumented_des_events_per_sec)
quick_obs_instr=$(metric "$tmp_quick" obs_instrumented_des_events_per_sec)
opt_candidates=$(metric "$tmp_full" optimize_candidates)
opt_scalar=$(metric "$tmp_full" optimize_scalar_candidates_per_sec)
opt_batch=$(metric "$tmp_full" optimize_batch_candidates_per_sec)
opt_speedup=$(metric "$tmp_full" optimize_batch_speedup)
opt_search_eval=$(metric "$tmp_full" optimize_search_evaluated)
opt_search_wall=$(metric "$tmp_full" optimize_search_wall_s)
quick_opt_scalar=$(metric "$tmp_quick" optimize_scalar_candidates_per_sec)
quick_opt_batch=$(metric "$tmp_quick" optimize_batch_candidates_per_sec)
serve_workers=$(metric "$tmp_serve" serve_workers)
serve_capacity=$(metric "$tmp_serve" serve_capacity_qps)
serve_offered=$(metric "$tmp_serve" serve_offered_qps)
serve_tput=$(metric "$tmp_serve" serve_throughput_qps)
serve_p50=$(metric "$tmp_serve" serve_p50_us)
serve_p99=$(metric "$tmp_serve" serve_p99_us)
serve_shed=$(metric "$tmp_serve" serve_shed_rate)
serve_degrade=$(metric "$tmp_serve" serve_degrade_rate)
q_serve_tput=$(metric "$tmp_serve_quick" serve_throughput_qps)
q_serve_p50=$(metric "$tmp_serve_quick" serve_p50_us)
q_serve_p99=$(metric "$tmp_serve_quick" serve_p99_us)
q_serve_shed=$(metric "$tmp_serve_quick" serve_shed_rate)
q_serve_degrade=$(metric "$tmp_serve_quick" serve_degrade_rate)

# Per-workload DES events/sec from the full run, assembled as one JSON
# object line ("name": rate, ...). The names are discovered from the
# perf_sweep output's wl_<name>_events_per_sec keys (registry-driven), so
# a newly registered workload lands here without touching this script.
workloads_json=$(awk -F': ' '
  $1 ~ /"wl_.*_events_per_sec"/ {
    name = $1
    sub(/^[[:space:]]*"wl_/, "", name)
    sub(/_events_per_sec"$/, "", name)
    gsub(/[,\r]/, "", $2)
    if (out != "") out = out ", "
    out = out "\"" name "\": " $2
  }
  END { print out }
' "$tmp_full")

# Pre-PR3 baseline (see header comment). Keep in sync with docs/PERFORMANCE.md.
base_des=2738960
base_engine=13756500
base_model=8821.67

obs_overhead=$(awk "BEGIN { printf \"%.3f\", $obs_instr / $obs_plain }")
speedup_des=$(awk "BEGIN { printf \"%.2f\", $full_des / $base_des }")
speedup_batch=$(awk "BEGIN { printf \"%.2f\", $full_batch / $full_model }")
speedup_engine=$(awk "BEGIN { printf \"%.2f\", $full_engine / $base_engine }")

cat > "$out" <<EOF
{
  "schema": "wavebench-perf-trajectory/1",
  "bench": "perf_sweep",
  "note": "Written by tools/run_perf.sh. baseline = the pre-PR3 hot path (std::function events, shared_ptr messages + requests, std::unordered_map channels, binary-heap calendar) at commit 23832a9, measured at PR3 time interleaved with the optimized build on one machine; current/quick re-measured on this machine by this run.",
  "machine": "$(uname -m) $(uname -s | tr 'A-Z' 'a-z'), $(getconf _NPROCESSORS_ONLN 2>/dev/null || echo '?') hardware thread(s)",
  "baseline_label": "pre-PR3 allocating hot path @ 23832a9",
  "baseline": {"des_events_per_sec": $base_des, "engine_events_per_sec": $base_engine, "model_points_per_sec": $base_model},
  "current_label": "this checkout (PR3 pooled hot path + PR4 workload subsystem + PR5 facade + PR6 batch solver + PR7 parallel engine + PR8 serve daemon + PR9 observability + PR10 auto-configurator), measured by this run",
  "current": {"des_events_per_sec": $full_des, "engine_events_per_sec": $full_engine, "model_points_per_sec": $full_model, "model_batch_points_per_sec": $full_batch, "sim_serial_events_per_sec": $par_serial, "sim_parallel_events_per_sec": $par_events},
  "quick": {"des_events_per_sec": $quick_des, "engine_events_per_sec": $quick_engine, "model_points_per_sec": $quick_model, "model_batch_points_per_sec": $quick_batch, "sim_serial_events_per_sec": $quick_par_serial, "sim_parallel_events_per_sec": $quick_par_events, "obs_uninstrumented_des_events_per_sec": $quick_obs_plain, "obs_instrumented_des_events_per_sec": $quick_obs_instr, "optimize_scalar_candidates_per_sec": $quick_opt_scalar, "optimize_batch_candidates_per_sec": $quick_opt_batch},
  "workloads_label": "per-workload DES events/sec, full grid (PR4 registry sweep)",
  "workloads_events_per_sec": {$workloads_json},
  "service_label": "EvalService memoization, full grid (PR5 facade): cold analytic evals/sec vs cache-hit lookups/sec on the same query mix",
  "service": {"cold_evals_per_sec": $svc_cold, "hits_per_sec": $svc_hits, "hit_speedup": $svc_speedup},
  "batch_label": "PR6 batch solver: batch-routed vs scalar analytic points/sec on the same grid, this run",
  "parallel_label": "PR7 LP-partitioned engine: P=1024 wavefront at $par_threads worker threads vs the serial engine, this run/machine ($hw_threads hardware thread(s) — the speedup is only meaningful when hardware_threads >= sim_parallel_threads; tools/check_perf.sh applies the same condition)",
  "parallel": {"threads": $par_threads, "hardware_threads": $hw_threads, "sim_serial_events_per_sec": $par_serial, "sim_parallel_events_per_sec": $par_events, "speedup": $par_speedup},
  "serve_label": "PR8 wave-serve daemon (bench/serve_load): closed-loop capacity probe, open-loop mixed stream at half capacity (p50/p99 end-to-end latency), and a DES overload burst (shed/degrade rates); $serve_workers worker(s) on this machine — absolute qps/latency are machine-bound, the cross-machine gate in tools/check_perf.sh only fires at >= 8 hardware threads",
  "serve": {"serve_workers": $serve_workers, "serve_capacity_qps": $serve_capacity, "serve_offered_qps": $serve_offered, "serve_throughput_qps": $serve_tput, "serve_p50_us": $serve_p50, "serve_p99_us": $serve_p99, "serve_shed_rate": $serve_shed, "serve_degrade_rate": $serve_degrade},
  "serve_quick": {"serve_throughput_qps": $q_serve_tput, "serve_p50_us": $q_serve_p50, "serve_p99_us": $q_serve_p99, "serve_shed_rate": $q_serve_shed, "serve_degrade_rate": $q_serve_degrade},
  "obs_label": "PR9 observability: the identical serial wavefront DES run plain, with the always-on metrics registry attached (instrumented — gated by tools/check_perf.sh at >= 0.90x uninstrumented within the fresh quick file), and with the opt-in span tracer on top (traced — reported only; $obs_spans spans recorded), full grid, this run",
  "obs_overhead": {"obs_uninstrumented_des_events_per_sec": $obs_plain, "obs_instrumented_des_events_per_sec": $obs_instr, "obs_traced_des_events_per_sec": $obs_traced, "obs_trace_spans": $obs_spans, "instrumented_over_uninstrumented": $obs_overhead},
  "optimize_label": "PR10 auto-configurator (bench/perf_sweep optimize section): a pinned beam-round candidate stream scored through the optimizer's compiled BatchEval plan vs the per-point scalar runner route (best-of-4 rounds, within-file — tools/check_perf.sh gates the quick speedup at >= 10x), plus one end-to-end seeded beam search with the DES re-rank",
  "optimize": {"optimize_candidates": $opt_candidates, "optimize_scalar_candidates_per_sec": $opt_scalar, "optimize_batch_candidates_per_sec": $opt_batch, "optimize_batch_speedup": $opt_speedup, "optimize_search_evaluated": $opt_search_eval, "optimize_search_wall_s": $opt_search_wall},
  "speedup": {"des_events_per_sec": $speedup_des, "engine_events_per_sec": $speedup_engine, "model_batch_vs_scalar": $speedup_batch}
}
EOF
echo
echo "wrote $out (speedup over pre-PR3 baseline: ${speedup_des}x DES events/sec;" \
     "batch solver ${speedup_batch}x scalar model points/sec;" \
     "EvalService hits ${svc_speedup}x cold evals;" \
     "wave-serve ${serve_tput} qps, p99 ${serve_p99} us;" \
     "obs overhead ${obs_overhead}x plain;" \
     "optimize batch scoring ${opt_speedup}x scalar)"

#!/bin/sh
# Fails (exit 1) when README.md or docs/*.md contains an intra-repo
# markdown link whose target does not exist. External links (http/https/
# mailto) and pure #anchors are not checked; fenced code blocks and
# inline code spans are ignored (C++ lambdas contain "](...)").
# Dependency-free POSIX shell; run from the repository root (or pass the
# root as $1). CI runs this in the docs job.
set -u

root="${1:-.}"
status=0

# The documentation set this script guards: deleting or renaming one of
# these must fail the docs job, not silently shrink the glob below.
for required in README.md docs/API.md docs/ARCHITECTURE.md docs/MODEL.md \
                docs/OBSERVABILITY.md docs/OPTIMIZE.md docs/PERFORMANCE.md \
                docs/SERVING.md docs/WORKLOADS.md; do
  if [ ! -f "$root/$required" ]; then
    echo "MISSING DOC: $required"
    status=1
  fi
done

for doc in "$root/README.md" "$root"/docs/*.md; do
  [ -f "$doc" ] || continue
  dir=$(dirname "$doc")
  # Drop ``` fenced blocks and `inline code`, then pull every "](target)"
  # out, one per line.
  targets=$(awk '
    /^[[:space:]]*```/ { fence = !fence; next }
    !fence { gsub(/`[^`]*`/, ""); print }
  ' "$doc" | grep -o ']([^) ]*)' | sed 's/^](//; s/)$//')
  for target in $targets; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*) continue ;;
    esac
    path="${target%%#*}"            # drop any #anchor
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN LINK: $doc -> $target"
      status=1
    fi
  done
done

# The embedding quickstart is the README's headline example and must stay
# facade-only: every quoted include is a wave/ public header (system
# includes use <>). An internal include here would break the installed-
# tree build that docs/API.md promises.
quickstart="$root/examples/quickstart.cpp"
if [ ! -f "$quickstart" ]; then
  echo "MISSING EXAMPLE: examples/quickstart.cpp"
  status=1
else
  leaks=$(grep -n '#include "' "$quickstart" | grep -v '#include "wave/' || true)
  if [ -n "$leaks" ]; then
    echo "QUICKSTART INCLUDES INTERNAL HEADERS:"
    echo "$leaks"
    status=1
  fi
fi

if [ "$status" -eq 0 ]; then
  echo "doc links OK"
fi
exit "$status"

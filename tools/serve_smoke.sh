#!/bin/sh
# End-to-end smoke of the wave-serve daemon (tools/wave_serve): start it
# on a private socket, push a mixed batch of queries through the bundled
# --client mode (ping, DES eval, structured not_found and invalid_request
# errors), snapshot the cache, shut the daemon down cleanly, restart it
# from the snapshot, and require (a) the restored cache to answer the
# same eval byte-identically and (b) the stats op to prove it was a cache
# hit, not a re-evaluation. It then scrapes the `metrics` op and fails on
# any malformed Prometheus exposition line or missing required metric.
# CI runs this in the serve-smoke job.
#
# Usage: tools/serve_smoke.sh [build-dir]
#   build-dir  default: build (needs tools/wave_serve built)
set -eu

build="${1:-build}"
bin="$build/tools/wave_serve"
sock="/tmp/wave_smoke_$$.sock"
snap="/tmp/wave_smoke_$$.snap"
pid=""

if [ ! -x "$bin" ]; then
  echo "error: $bin not found (build with cmake -B $build -S . &&" \
       "cmake --build $build)" >&2
  exit 1
fi

cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -f "$sock" "$snap"
}
trap cleanup EXIT

start_daemon() {
  "$bin" --socket="$sock" --snapshot="$snap" &
  pid=$!
  i=0
  while [ ! -S "$sock" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "FAIL: daemon never bound $sock" >&2
      exit 1
    fi
    sleep 0.1
  done
}

client() { # stdin: request lines; stdout: response lines
  "$bin" --socket="$sock" --client
}

expect() { # haystack needle label
  case "$1" in
    *"$2"*) ;;
    *) echo "FAIL: $3 — expected '$2' in: $1" >&2; exit 1 ;;
  esac
}

# The eval we track across the restart. Any engine works; sim makes the
# "hit, not re-evaluation" distinction worth checking.
eval_req='{"id":"q1","op":"eval","engine":"sim","processors":64,"iterations":2}'

echo "== cold daemon: mixed queries =="
start_daemon
expect "$(printf '%s\n' '{"id":"p","op":"ping"}' | client)" \
       '"pong":true' "ping"
cold=$(printf '%s\n' "$eval_req" | client)
expect "$cold" '"ok":true' "cold eval"
expect "$(printf '%s\n' '{"id":"m","op":"eval","machine":"ghost"}' | client)" \
       '"code":"not_found"' "unknown machine"
expect "$(printf 'garbage\n' | client)" \
       '"code":"invalid_request"' "malformed line"

echo "== snapshot + clean shutdown =="
expect "$(printf '%s\n' '{"id":"s","op":"snapshot"}' | client)" \
       '"entries":1' "snapshot op"
[ -f "$snap" ] || { echo "FAIL: snapshot file $snap missing" >&2; exit 1; }
printf '%s\n' '{"id":"z","op":"shutdown"}' | client > /dev/null
wait "$pid"
pid=""

echo "== warm restart from the snapshot =="
start_daemon
warm=$(printf '%s\n' "$eval_req" | client)
if [ "$warm" != "$cold" ]; then
  echo "FAIL: restored cache is not byte-identical" >&2
  echo "  cold: $cold" >&2
  echo "  warm: $warm" >&2
  exit 1
fi
stats=$(printf '%s\n' '{"id":"st","op":"stats"}' | client)
expect "$stats" '"restored_entries":1' "snapshot restore count"
expect "$stats" '"hits":1' "warm eval was a cache hit"
expect "$stats" '"misses":0' "warm eval did not re-evaluate"
expect "$stats" '"uptime_ms"' "stats carries uptime_ms"

echo "== metrics op: Prometheus exposition =="
metrics_resp=$(printf '%s\n' '{"id":"mx","op":"metrics"}' | client)
expect "$metrics_resp" '"ok":true' "metrics op"
expect "$metrics_resp" '"metrics":"' "metrics payload present"
# The payload is one JSON string: pull it out and undo the \n / \" / \\
# escapes to recover the exposition text.
payload=$(printf '%s\n' "$metrics_resp" |
  sed 's/.*"metrics":"//; s/"}[[:space:]]*$//')
text=$(printf '%s' "$payload" |
  awk '{ gsub(/\\n/, "\n"); gsub(/\\"/, "\""); gsub(/\\\\/, "\\"); print }')
if [ -z "$text" ]; then
  echo "FAIL: metrics payload is empty" >&2
  exit 1
fi
# Every line must be a comment (# HELP / # TYPE) or a sample
# (name{labels} value | name value) — anything else is a malformed
# exposition and fails the smoke.
printf '%s\n' "$text" | awk '
  /^$/ { next }
  /^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( |$)/ { next }
  /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9][0-9.eE+-]*$/ { next }
  { print "FAIL: malformed exposition line: " $0 > "/dev/stderr"; bad = 1 }
  END { exit bad }
'
# Required metrics: the daemon's own op latency + admission counters and
# the EvalService shard histograms must all be present in one scrape.
for name in serve_op_eval_latency_us_count serve_op_stats_latency_us_count \
            serve_shed_total serve_watchdog_fires_total \
            service_shard0_hit_latency_us_count; do
  expect "$text" "$name" "metrics exposition contains $name"
done

printf '%s\n' '{"id":"z","op":"shutdown"}' | client > /dev/null
wait "$pid"
pid=""

echo "serve smoke OK"

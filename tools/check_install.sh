#!/bin/sh
# Embedding smoke test: installs the built tree into a scratch prefix and
# builds examples/quickstart against it with find_package(wave CONFIG) —
# proving the installed surface (libwave + include/wave only, no internal
# headers) is complete for a facade-only application. CI runs this in the
# install job.
#
# Usage: tools/check_install.sh [build-dir]
#   build-dir  default: build (must already be configured + built)
set -eu

build="${1:-build}"
root=$(cd "$(dirname "$0")/.." && pwd)
scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

echo "== cmake --install -> $scratch/prefix =="
cmake --install "$build" --prefix "$scratch/prefix" > /dev/null

# The installed tree must NOT leak internal headers: the facade promise is
# include/wave only.
if [ -d "$scratch/prefix/include/core" ] || \
   [ -d "$scratch/prefix/include/runner" ]; then
  echo "FAIL: internal headers leaked into the install prefix" >&2
  exit 1
fi
if [ ! -f "$scratch/prefix/include/wave/wave.h" ]; then
  echo "FAIL: include/wave/wave.h missing from the install prefix" >&2
  exit 1
fi

echo "== find_package(wave) consumer build =="
mkdir "$scratch/app"
cat > "$scratch/app/CMakeLists.txt" <<EOF
cmake_minimum_required(VERSION 3.20)
project(wave_install_smoke CXX)
set(CMAKE_CXX_STANDARD 20)
set(CMAKE_CXX_STANDARD_REQUIRED ON)
find_package(wave CONFIG REQUIRED)
add_executable(quickstart "$root/examples/quickstart.cpp")
target_link_libraries(quickstart PRIVATE wave::wave)
EOF
cmake -S "$scratch/app" -B "$scratch/app/build" \
      -DCMAKE_BUILD_TYPE=Release \
      -DCMAKE_PREFIX_PATH="$scratch/prefix" > /dev/null
cmake --build "$scratch/app/build" -j > /dev/null

echo "== run the installed-tree quickstart =="
# Run from the repository root so the example's machines/ catalog resolves.
(cd "$root" && "$scratch/app/build/quickstart" > /dev/null)

echo "install/find_package(wave) smoke OK"

#!/bin/sh
# Perf regression gate: compares a fresh `perf_sweep --quick` measurement
# against the committed trajectory file and fails on a large events/sec
# drop, and checks the batch solver still beats the scalar analytic path
# by a wide margin within the fresh run. CI runs this in the perf-smoke
# job.
#
# Usage: tools/check_perf.sh BENCH_pr4.json fresh_quick.json [min_ratio]
#   BENCH_pr4.json    committed trajectory (its "quick" section is the
#                     reference)
#   fresh_quick.json  output of `bench/perf_sweep --quick --out=...`
#   min_batch_speedup (4th arg) default 10 — the fresh run's batch-routed
#                     model points/sec must beat its own scalar points/sec
#                     by this factor (within-file, machine-independent)
#   min_ratio         default 0.75 — i.e. fail on a >25% regression. The
#                     threshold is deliberately generous: CI runners are
#                     noisy and differ from the machine that wrote the
#                     reference; this catches "the pooling broke and we
#                     are allocating again", not 5% jitter.
set -eu

ref="${1:?usage: check_perf.sh BENCH.json fresh.json [min_ratio]}"
fresh="${2:?usage: check_perf.sh BENCH.json fresh.json [min_ratio]}"
min_ratio="${3:-0.75}"

# The committed file keeps each section on one line, so the quick
# reference is the number following des_events_per_sec on the "quick" line.
# The fresh-file key match is anchored to the whole field so registry-
# derived wl_<name>_events_per_sec keys can never alias it, whatever a
# future workload is called.
ref_des=$(awk -F'"des_events_per_sec": ' '/"quick"/ { split($2, a, /[,}]/); print a[1] }' "$ref")
fresh_des=$(awk -F': ' '$1 ~ /^[[:space:]]*"des_events_per_sec"$/ { gsub(/[,\r]/, "", $2); print $2 }' "$fresh")

if [ -z "$ref_des" ] || [ -z "$fresh_des" ]; then
  echo "check_perf: could not extract des_events_per_sec (ref='$ref_des'," \
       "fresh='$fresh_des')" >&2
  exit 2
fi

ratio=$(awk "BEGIN { printf \"%.3f\", $fresh_des / $ref_des }")
echo "DES events/sec: fresh $fresh_des vs committed quick $ref_des" \
     "(ratio $ratio, minimum $min_ratio)"
ok=$(awk "BEGIN { print ($fresh_des >= $min_ratio * $ref_des) ? 1 : 0 }")
if [ "$ok" -ne 1 ]; then
  echo "PERF REGRESSION: quick events/sec fell below ${min_ratio}x the" \
       "committed reference" >&2
  exit 1
fi
# Batch-solver gate: the fresh run's batch-routed points/sec must be at
# least min_batch_speedup x its own scalar points/sec. Both numbers come
# from the same process on the same grid, so this is machine-independent —
# it catches "the batch route quietly fell back to scalar", not jitter.
min_batch_speedup="${4:-10}"
fresh_model=$(awk -F': ' '$1 ~ /^[[:space:]]*"model_points_per_sec"$/ { gsub(/[,\r]/, "", $2); print $2 }' "$fresh")
fresh_batch=$(awk -F': ' '$1 ~ /^[[:space:]]*"model_batch_points_per_sec"$/ { gsub(/[,\r]/, "", $2); print $2 }' "$fresh")

if [ -z "$fresh_model" ] || [ -z "$fresh_batch" ]; then
  echo "check_perf: could not extract model/model_batch points_per_sec" \
       "(model='$fresh_model', batch='$fresh_batch')" >&2
  exit 2
fi

batch_ratio=$(awk "BEGIN { printf \"%.2f\", $fresh_batch / $fresh_model }")
echo "model points/sec: batch $fresh_batch vs scalar $fresh_model" \
     "(speedup ${batch_ratio}x, minimum ${min_batch_speedup}x)"
ok=$(awk "BEGIN { print ($fresh_batch >= $min_batch_speedup * $fresh_model) ? 1 : 0 }")
if [ "$ok" -ne 1 ]; then
  echo "PERF REGRESSION: batch-routed analytic points/sec fell below" \
       "${min_batch_speedup}x the scalar path" >&2
  exit 1
fi
echo "perf OK"

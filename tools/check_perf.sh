#!/bin/sh
# Perf regression gate: compares a fresh `perf_sweep --quick` measurement
# against the committed trajectory file and fails on a large events/sec
# drop, and checks the batch solver still beats the scalar analytic path
# by a wide margin within the fresh run. With a third file — a fresh
# `serve_load --quick` run — it also gates the wave-serve daemon section.
# CI runs this in the perf-smoke job.
#
# Usage: tools/check_perf.sh BENCH.json fresh_quick.json [fresh_serve.json] \
#            [min_ratio] [min_batch_speedup] [min_parallel_speedup] \
#            [min_obs_ratio] [min_optimize_speedup]
#   BENCH.json        committed trajectory (its "quick" and "serve_quick"
#                     sections are the references)
#   fresh_quick.json  output of `bench/perf_sweep --quick --out=...`
#   fresh_serve.json  output of `bench/serve_load --quick --out=...`;
#                     optional, but omitting it skips every serve gate
#                     with a LOUD message (CI always supplies it)
#   min_ratio         default 0.75 — i.e. fail on a >25% regression. The
#                     threshold is deliberately generous: CI runners are
#                     noisy and differ from the machine that wrote the
#                     reference; this catches "the pooling broke and we
#                     are allocating again", not 5% jitter.
#   min_batch_speedup default 10 — the fresh run's batch-routed model
#                     points/sec must beat its own scalar points/sec by
#                     this factor (within-file, machine-independent)
#   min_parallel_speedup default 2.5 — the LP engine at 8 threads must
#                     beat the serial engine on the same P=1024 wavefront
#                     (within-file; enforced only when the runner has >= 8
#                     hardware threads, skipped with a message otherwise)
#   min_obs_ratio     default 0.90 — the instrumented DES run (always-on
#                     metrics registry attached) must keep at least this
#                     fraction of the uninstrumented events/sec
#                     (within-file, machine-independent; the opt-in span
#                     tracer is reported but not gated)
#   min_optimize_speedup default 10 — the fresh run's batch-scored
#                     optimize candidates/sec must beat its own scalar
#                     (per-point runner route) candidates/sec by this
#                     factor on the same pinned candidate stream
#                     (within-file, machine-independent — the PR 6 batch
#                     gate convention applied to the auto-configurator's
#                     scoring path)
#
# Serve gates (fixed thresholds, see the serve section at the bottom):
# within-file, the overload burst must actually shed and degrade (rates
# > 0 — machine-independent proof the admission control works), and
# cross-machine, throughput >= 0.5x / p99 <= 4x the committed serve_quick
# reference — the cross-machine pair only on runners with >= 8 hardware
# threads (PR7-style loud skip below that: a 1-core runner measures the
# scheduler, not the daemon).
#
# Every gated key must exist in the fresh file — a missing key exits 2, so
# a gate can never silently pass because perf_sweep stopped emitting it.
set -eu

ref="${1:?usage: check_perf.sh BENCH.json fresh.json [fresh_serve.json] [min_ratio]}"
fresh="${2:?usage: check_perf.sh BENCH.json fresh.json [fresh_serve.json] [min_ratio]}"
fresh_serve="${3:-}"
min_ratio="${4:-0.75}"

# The committed file keeps each section on one line, so the quick
# reference is the number following des_events_per_sec on the "quick" line.
# The fresh-file key match is anchored to the whole field so registry-
# derived wl_<name>_events_per_sec keys can never alias it, whatever a
# future workload is called.
ref_des=$(awk -F'"des_events_per_sec": ' '/"quick"/ { split($2, a, /[,}]/); print a[1] }' "$ref")
fresh_des=$(awk -F': ' '$1 ~ /^[[:space:]]*"des_events_per_sec"$/ { gsub(/[,\r]/, "", $2); print $2 }' "$fresh")

if [ -z "$ref_des" ] || [ -z "$fresh_des" ]; then
  echo "check_perf: could not extract des_events_per_sec (ref='$ref_des'," \
       "fresh='$fresh_des')" >&2
  exit 2
fi

ratio=$(awk "BEGIN { printf \"%.3f\", $fresh_des / $ref_des }")
echo "DES events/sec: fresh $fresh_des vs committed quick $ref_des" \
     "(ratio $ratio, minimum $min_ratio)"
ok=$(awk "BEGIN { print ($fresh_des >= $min_ratio * $ref_des) ? 1 : 0 }")
if [ "$ok" -ne 1 ]; then
  echo "PERF REGRESSION: quick events/sec fell below ${min_ratio}x the" \
       "committed reference" >&2
  exit 1
fi
# Batch-solver gate: the fresh run's batch-routed points/sec must be at
# least min_batch_speedup x its own scalar points/sec. Both numbers come
# from the same process on the same grid, so this is machine-independent —
# it catches "the batch route quietly fell back to scalar", not jitter.
min_batch_speedup="${5:-10}"
fresh_model=$(awk -F': ' '$1 ~ /^[[:space:]]*"model_points_per_sec"$/ { gsub(/[,\r]/, "", $2); print $2 }' "$fresh")
fresh_batch=$(awk -F': ' '$1 ~ /^[[:space:]]*"model_batch_points_per_sec"$/ { gsub(/[,\r]/, "", $2); print $2 }' "$fresh")

if [ -z "$fresh_model" ] || [ -z "$fresh_batch" ]; then
  echo "check_perf: could not extract model/model_batch points_per_sec" \
       "(model='$fresh_model', batch='$fresh_batch')" >&2
  exit 2
fi

batch_ratio=$(awk "BEGIN { printf \"%.2f\", $fresh_batch / $fresh_model }")
echo "model points/sec: batch $fresh_batch vs scalar $fresh_model" \
     "(speedup ${batch_ratio}x, minimum ${min_batch_speedup}x)"
ok=$(awk "BEGIN { print ($fresh_batch >= $min_batch_speedup * $fresh_model) ? 1 : 0 }")
if [ "$ok" -ne 1 ]; then
  echo "PERF REGRESSION: batch-routed analytic points/sec fell below" \
       "${min_batch_speedup}x the scalar path" >&2
  exit 1
fi

# Auto-configurator gate (PR10): the optimize section scores one pinned
# candidate stream twice — through the optimizer's compiled BatchEval plan
# and through the per-point scalar runner route. Both rates come from the
# same process on the same candidates (best-of-N rounds), so this is
# within-file and machine-independent: it catches "the optimizer's scoring
# quietly degraded to per-point evaluation", not jitter.
min_optimize_speedup="${8:-10}"
fresh_opt_scalar=$(awk -F': ' '$1 ~ /^[[:space:]]*"optimize_scalar_candidates_per_sec"$/ { gsub(/[,\r]/, "", $2); print $2 }' "$fresh")
fresh_opt_batch=$(awk -F': ' '$1 ~ /^[[:space:]]*"optimize_batch_candidates_per_sec"$/ { gsub(/[,\r]/, "", $2); print $2 }' "$fresh")

if [ -z "$fresh_opt_scalar" ] || [ -z "$fresh_opt_batch" ]; then
  echo "check_perf: could not extract optimize candidates_per_sec" \
       "(scalar='$fresh_opt_scalar', batch='$fresh_opt_batch')" >&2
  exit 2
fi

opt_ratio=$(awk "BEGIN { printf \"%.2f\", $fresh_opt_batch / $fresh_opt_scalar }")
echo "optimize candidates/sec: batch $fresh_opt_batch vs scalar $fresh_opt_scalar" \
     "(speedup ${opt_ratio}x, minimum ${min_optimize_speedup}x)"
ok=$(awk "BEGIN { print ($fresh_opt_batch >= $min_optimize_speedup * $fresh_opt_scalar) ? 1 : 0 }")
if [ "$ok" -ne 1 ]; then
  echo "PERF REGRESSION: batch-scored optimize candidates/sec fell below" \
       "${min_optimize_speedup}x the scalar route" >&2
  exit 1
fi

# Engine-scaling gate: the LP-partitioned engine at 8 worker threads must
# beat the serial engine by min_parallel_speedup on the same P=1024
# wavefront (within-file, so machine-independent) — but only on runners
# with enough hardware threads to express the parallelism. On smaller
# runners the ratio gate is SKIPPED WITH A MESSAGE; the keys themselves
# are mandatory on every runner (a missing key is a tooling regression and
# exits 2 — gates must never silently skip because a key vanished).
min_parallel_speedup="${6:-2.5}"
fresh_hw=$(awk -F': ' '$1 ~ /^[[:space:]]*"hardware_threads"$/ { gsub(/[,\r]/, "", $2); print $2 }' "$fresh")
fresh_par_threads=$(awk -F': ' '$1 ~ /^[[:space:]]*"sim_parallel_threads"$/ { gsub(/[,\r]/, "", $2); print $2 }' "$fresh")
fresh_serial=$(awk -F': ' '$1 ~ /^[[:space:]]*"sim_serial_events_per_sec"$/ { gsub(/[,\r]/, "", $2); print $2 }' "$fresh")
fresh_par=$(awk -F': ' '$1 ~ /^[[:space:]]*"sim_parallel_events_per_sec"$/ { gsub(/[,\r]/, "", $2); print $2 }' "$fresh")

if [ -z "$fresh_hw" ] || [ -z "$fresh_par_threads" ] || \
   [ -z "$fresh_serial" ] || [ -z "$fresh_par" ]; then
  echo "check_perf: could not extract engine-scaling keys" \
       "(hardware_threads='$fresh_hw', sim_parallel_threads='$fresh_par_threads'," \
       "serial='$fresh_serial', parallel='$fresh_par')" >&2
  exit 2
fi

par_ratio=$(awk "BEGIN { printf \"%.2f\", $fresh_par / $fresh_serial }")
if [ "$fresh_hw" -ge "$fresh_par_threads" ]; then
  echo "engine scaling: parallel $fresh_par vs serial $fresh_serial events/sec" \
       "(${par_ratio}x at $fresh_par_threads threads, minimum ${min_parallel_speedup}x," \
       "$fresh_hw hardware threads)"
  ok=$(awk "BEGIN { print ($fresh_par >= $min_parallel_speedup * $fresh_serial) ? 1 : 0 }")
  if [ "$ok" -ne 1 ]; then
    echo "PERF REGRESSION: parallel engine events/sec fell below" \
         "${min_parallel_speedup}x serial at $fresh_par_threads threads" >&2
    exit 1
  fi
else
  echo "engine scaling: SKIPPED ratio gate — runner has $fresh_hw hardware" \
       "thread(s), fewer than the $fresh_par_threads the benchmark drives" \
       "(measured ${par_ratio}x; keys present and checked)"
fi

# Observability-overhead gate (PR9): the instrumented run (the always-on
# metrics registry attached) must stay within 10% of the plain run on the
# identical serial wavefront. Both numbers come from the same process, so
# this is within-file and machine-independent — it catches "someone put a
# mutex or an allocation on the event hot path", not jitter. min_obs_ratio
# is deliberately below the near-zero-cost claim to absorb small-grid
# noise in --quick runs. The opt-in span tracer's rate
# (obs_traced_des_events_per_sec) is reported by perf_sweep but not gated
# — full timeline capture is a diagnostic mode with documented overhead
# (docs/OBSERVABILITY.md).
min_obs_ratio="${7:-0.90}"
fresh_obs_plain=$(awk -F': ' '$1 ~ /^[[:space:]]*"obs_uninstrumented_des_events_per_sec"$/ { gsub(/[,\r]/, "", $2); print $2 }' "$fresh")
fresh_obs_instr=$(awk -F': ' '$1 ~ /^[[:space:]]*"obs_instrumented_des_events_per_sec"$/ { gsub(/[,\r]/, "", $2); print $2 }' "$fresh")

if [ -z "$fresh_obs_plain" ] || [ -z "$fresh_obs_instr" ]; then
  echo "check_perf: could not extract observability-overhead keys" \
       "(uninstrumented='$fresh_obs_plain', instrumented='$fresh_obs_instr')" >&2
  exit 2
fi

obs_ratio=$(awk "BEGIN { printf \"%.3f\", $fresh_obs_instr / $fresh_obs_plain }")
echo "obs overhead: instrumented $fresh_obs_instr vs plain $fresh_obs_plain" \
     "events/sec (ratio $obs_ratio, minimum $min_obs_ratio)"
ok=$(awk "BEGIN { print ($fresh_obs_instr >= $min_obs_ratio * $fresh_obs_plain) ? 1 : 0 }")
if [ "$ok" -ne 1 ]; then
  echo "PERF REGRESSION: instrumented DES events/sec fell below" \
       "${min_obs_ratio}x the uninstrumented run — the observability layer" \
       "is no longer near-zero-cost on the event hot path" >&2
  exit 1
fi

# wave-serve gates (PR8). Within-file first: the serve_load overload burst
# must actually shed and degrade — rates of exactly 0 mean the admission
# control or the degrade path broke, on any machine. Then cross-machine
# throughput/p99 against the committed serve_quick reference, enforced
# only on runners with >= 8 hardware threads (same rationale and the same
# loud skip as the engine-scaling gate above).
if [ -z "$fresh_serve" ]; then
  echo "serve: SKIPPED all serve gates — no fresh serve_load file supplied" \
       "(pass one as the third argument; CI always does)"
else
  serve_metric() { # key
    awk -F': ' -v key="\"$1\"" \
      '$1 ~ ("^[[:space:]]*" key "$") { gsub(/[,\r]/, "", $2); print $2 }' \
      "$fresh_serve"
  }
  s_hw=$(serve_metric hardware_threads)
  s_tput=$(serve_metric serve_throughput_qps)
  s_p99=$(serve_metric serve_p99_us)
  s_shed=$(serve_metric serve_shed_rate)
  s_degrade=$(serve_metric serve_degrade_rate)
  if [ -z "$s_hw" ] || [ -z "$s_tput" ] || [ -z "$s_p99" ] || \
     [ -z "$s_shed" ] || [ -z "$s_degrade" ]; then
    echo "check_perf: could not extract serve keys from $fresh_serve" \
         "(hw='$s_hw', throughput='$s_tput', p99='$s_p99', shed='$s_shed'," \
         "degrade='$s_degrade')" >&2
    exit 2
  fi

  echo "serve overload: shed_rate $s_shed, degrade_rate $s_degrade" \
       "(both must be > 0)"
  ok=$(awk "BEGIN { print ($s_shed > 0 && $s_degrade > 0) ? 1 : 0 }")
  if [ "$ok" -ne 1 ]; then
    echo "SERVE REGRESSION: the overload burst no longer sheds or degrades" \
         "(shed_rate=$s_shed, degrade_rate=$s_degrade) — bounded admission" \
         "or the degrade path is broken" >&2
    exit 1
  fi

  ref_serve_tput=$(awk -F'"serve_throughput_qps": ' '/"serve_quick"/ { split($2, a, /[,}]/); print a[1] }' "$ref")
  ref_serve_p99=$(awk -F'"serve_p99_us": ' '/"serve_quick"/ { split($2, a, /[,}]/); print a[1] }' "$ref")
  if [ -z "$ref_serve_tput" ] || [ -z "$ref_serve_p99" ]; then
    echo "check_perf: $ref has no serve_quick reference" \
         "(throughput='$ref_serve_tput', p99='$ref_serve_p99')" >&2
    exit 2
  fi
  min_serve_hw=8
  min_serve_ratio=0.5
  max_serve_p99_ratio=4
  serve_ratio=$(awk "BEGIN { printf \"%.3f\", $s_tput / $ref_serve_tput }")
  p99_ratio=$(awk "BEGIN { printf \"%.3f\", $s_p99 / $ref_serve_p99 }")
  if [ "$s_hw" -ge "$min_serve_hw" ]; then
    echo "serve throughput: fresh $s_tput vs committed quick $ref_serve_tput qps" \
         "(ratio $serve_ratio, minimum $min_serve_ratio)"
    echo "serve p99: fresh $s_p99 vs committed quick $ref_serve_p99 us" \
         "(ratio $p99_ratio, maximum $max_serve_p99_ratio)"
    ok=$(awk "BEGIN { print ($s_tput >= $min_serve_ratio * $ref_serve_tput && \
                             $s_p99 <= $max_serve_p99_ratio * $ref_serve_p99) ? 1 : 0 }")
    if [ "$ok" -ne 1 ]; then
      echo "SERVE REGRESSION: throughput below ${min_serve_ratio}x or p99 above" \
           "${max_serve_p99_ratio}x the committed serve_quick reference" >&2
      exit 1
    fi
  else
    echo "serve: SKIPPED throughput/p99 gates — runner has $s_hw hardware" \
         "thread(s), fewer than the $min_serve_hw required for a meaningful" \
         "daemon measurement (measured: $s_tput qps, p99 $s_p99 us," \
         "ratios $serve_ratio/$p99_ratio; keys present, overload gates enforced)"
  fi
fi
echo "perf OK"

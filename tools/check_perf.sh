#!/bin/sh
# Perf regression gate: compares a fresh `perf_sweep --quick` measurement
# against the committed trajectory file and fails on a large events/sec
# drop, and checks the batch solver still beats the scalar analytic path
# by a wide margin within the fresh run. CI runs this in the perf-smoke
# job.
#
# Usage: tools/check_perf.sh BENCH.json fresh_quick.json \
#            [min_ratio] [min_batch_speedup] [min_parallel_speedup]
#   BENCH.json        committed trajectory (its "quick" section is the
#                     reference)
#   fresh_quick.json  output of `bench/perf_sweep --quick --out=...`
#   min_ratio         default 0.75 — i.e. fail on a >25% regression. The
#                     threshold is deliberately generous: CI runners are
#                     noisy and differ from the machine that wrote the
#                     reference; this catches "the pooling broke and we
#                     are allocating again", not 5% jitter.
#   min_batch_speedup default 10 — the fresh run's batch-routed model
#                     points/sec must beat its own scalar points/sec by
#                     this factor (within-file, machine-independent)
#   min_parallel_speedup default 2.5 — the LP engine at 8 threads must
#                     beat the serial engine on the same P=1024 wavefront
#                     (within-file; enforced only when the runner has >= 8
#                     hardware threads, skipped with a message otherwise)
#
# Every gated key must exist in the fresh file — a missing key exits 2, so
# a gate can never silently pass because perf_sweep stopped emitting it.
set -eu

ref="${1:?usage: check_perf.sh BENCH.json fresh.json [min_ratio]}"
fresh="${2:?usage: check_perf.sh BENCH.json fresh.json [min_ratio]}"
min_ratio="${3:-0.75}"

# The committed file keeps each section on one line, so the quick
# reference is the number following des_events_per_sec on the "quick" line.
# The fresh-file key match is anchored to the whole field so registry-
# derived wl_<name>_events_per_sec keys can never alias it, whatever a
# future workload is called.
ref_des=$(awk -F'"des_events_per_sec": ' '/"quick"/ { split($2, a, /[,}]/); print a[1] }' "$ref")
fresh_des=$(awk -F': ' '$1 ~ /^[[:space:]]*"des_events_per_sec"$/ { gsub(/[,\r]/, "", $2); print $2 }' "$fresh")

if [ -z "$ref_des" ] || [ -z "$fresh_des" ]; then
  echo "check_perf: could not extract des_events_per_sec (ref='$ref_des'," \
       "fresh='$fresh_des')" >&2
  exit 2
fi

ratio=$(awk "BEGIN { printf \"%.3f\", $fresh_des / $ref_des }")
echo "DES events/sec: fresh $fresh_des vs committed quick $ref_des" \
     "(ratio $ratio, minimum $min_ratio)"
ok=$(awk "BEGIN { print ($fresh_des >= $min_ratio * $ref_des) ? 1 : 0 }")
if [ "$ok" -ne 1 ]; then
  echo "PERF REGRESSION: quick events/sec fell below ${min_ratio}x the" \
       "committed reference" >&2
  exit 1
fi
# Batch-solver gate: the fresh run's batch-routed points/sec must be at
# least min_batch_speedup x its own scalar points/sec. Both numbers come
# from the same process on the same grid, so this is machine-independent —
# it catches "the batch route quietly fell back to scalar", not jitter.
min_batch_speedup="${4:-10}"
fresh_model=$(awk -F': ' '$1 ~ /^[[:space:]]*"model_points_per_sec"$/ { gsub(/[,\r]/, "", $2); print $2 }' "$fresh")
fresh_batch=$(awk -F': ' '$1 ~ /^[[:space:]]*"model_batch_points_per_sec"$/ { gsub(/[,\r]/, "", $2); print $2 }' "$fresh")

if [ -z "$fresh_model" ] || [ -z "$fresh_batch" ]; then
  echo "check_perf: could not extract model/model_batch points_per_sec" \
       "(model='$fresh_model', batch='$fresh_batch')" >&2
  exit 2
fi

batch_ratio=$(awk "BEGIN { printf \"%.2f\", $fresh_batch / $fresh_model }")
echo "model points/sec: batch $fresh_batch vs scalar $fresh_model" \
     "(speedup ${batch_ratio}x, minimum ${min_batch_speedup}x)"
ok=$(awk "BEGIN { print ($fresh_batch >= $min_batch_speedup * $fresh_model) ? 1 : 0 }")
if [ "$ok" -ne 1 ]; then
  echo "PERF REGRESSION: batch-routed analytic points/sec fell below" \
       "${min_batch_speedup}x the scalar path" >&2
  exit 1
fi

# Engine-scaling gate: the LP-partitioned engine at 8 worker threads must
# beat the serial engine by min_parallel_speedup on the same P=1024
# wavefront (within-file, so machine-independent) — but only on runners
# with enough hardware threads to express the parallelism. On smaller
# runners the ratio gate is SKIPPED WITH A MESSAGE; the keys themselves
# are mandatory on every runner (a missing key is a tooling regression and
# exits 2 — gates must never silently skip because a key vanished).
min_parallel_speedup="${5:-2.5}"
fresh_hw=$(awk -F': ' '$1 ~ /^[[:space:]]*"hardware_threads"$/ { gsub(/[,\r]/, "", $2); print $2 }' "$fresh")
fresh_par_threads=$(awk -F': ' '$1 ~ /^[[:space:]]*"sim_parallel_threads"$/ { gsub(/[,\r]/, "", $2); print $2 }' "$fresh")
fresh_serial=$(awk -F': ' '$1 ~ /^[[:space:]]*"sim_serial_events_per_sec"$/ { gsub(/[,\r]/, "", $2); print $2 }' "$fresh")
fresh_par=$(awk -F': ' '$1 ~ /^[[:space:]]*"sim_parallel_events_per_sec"$/ { gsub(/[,\r]/, "", $2); print $2 }' "$fresh")

if [ -z "$fresh_hw" ] || [ -z "$fresh_par_threads" ] || \
   [ -z "$fresh_serial" ] || [ -z "$fresh_par" ]; then
  echo "check_perf: could not extract engine-scaling keys" \
       "(hardware_threads='$fresh_hw', sim_parallel_threads='$fresh_par_threads'," \
       "serial='$fresh_serial', parallel='$fresh_par')" >&2
  exit 2
fi

par_ratio=$(awk "BEGIN { printf \"%.2f\", $fresh_par / $fresh_serial }")
if [ "$fresh_hw" -ge "$fresh_par_threads" ]; then
  echo "engine scaling: parallel $fresh_par vs serial $fresh_serial events/sec" \
       "(${par_ratio}x at $fresh_par_threads threads, minimum ${min_parallel_speedup}x," \
       "$fresh_hw hardware threads)"
  ok=$(awk "BEGIN { print ($fresh_par >= $min_parallel_speedup * $fresh_serial) ? 1 : 0 }")
  if [ "$ok" -ne 1 ]; then
    echo "PERF REGRESSION: parallel engine events/sec fell below" \
         "${min_parallel_speedup}x serial at $fresh_par_threads threads" >&2
    exit 1
  fi
else
  echo "engine scaling: SKIPPED ratio gate — runner has $fresh_hw hardware" \
       "thread(s), fewer than the $fresh_par_threads the benchmark drives" \
       "(measured ${par_ratio}x; keys present and checked)"
fi
echo "perf OK"

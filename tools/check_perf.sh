#!/bin/sh
# Perf regression gate: compares a fresh `perf_sweep --quick` measurement
# against the committed trajectory file and fails on a large events/sec
# drop. CI runs this in the perf-smoke job.
#
# Usage: tools/check_perf.sh BENCH_pr4.json fresh_quick.json [min_ratio]
#   BENCH_pr4.json    committed trajectory (its "quick" section is the
#                     reference)
#   fresh_quick.json  output of `bench/perf_sweep --quick --out=...`
#   min_ratio         default 0.75 — i.e. fail on a >25% regression. The
#                     threshold is deliberately generous: CI runners are
#                     noisy and differ from the machine that wrote the
#                     reference; this catches "the pooling broke and we
#                     are allocating again", not 5% jitter.
set -eu

ref="${1:?usage: check_perf.sh BENCH.json fresh.json [min_ratio]}"
fresh="${2:?usage: check_perf.sh BENCH.json fresh.json [min_ratio]}"
min_ratio="${3:-0.75}"

# The committed file keeps each section on one line, so the quick
# reference is the number following des_events_per_sec on the "quick" line.
# The fresh-file key match is anchored to the whole field so registry-
# derived wl_<name>_events_per_sec keys can never alias it, whatever a
# future workload is called.
ref_des=$(awk -F'"des_events_per_sec": ' '/"quick"/ { split($2, a, /[,}]/); print a[1] }' "$ref")
fresh_des=$(awk -F': ' '$1 ~ /^[[:space:]]*"des_events_per_sec"$/ { gsub(/[,\r]/, "", $2); print $2 }' "$fresh")

if [ -z "$ref_des" ] || [ -z "$fresh_des" ]; then
  echo "check_perf: could not extract des_events_per_sec (ref='$ref_des'," \
       "fresh='$fresh_des')" >&2
  exit 2
fi

ratio=$(awk "BEGIN { printf \"%.3f\", $fresh_des / $ref_des }")
echo "DES events/sec: fresh $fresh_des vs committed quick $ref_des" \
     "(ratio $ratio, minimum $min_ratio)"
ok=$(awk "BEGIN { print ($fresh_des >= $min_ratio * $ref_des) ? 1 : 0 }")
if [ "$ok" -ne 1 ]; then
  echo "PERF REGRESSION: quick events/sec fell below ${min_ratio}x the" \
       "committed reference" >&2
  exit 1
fi
echo "perf OK"

// wave-serve: the fault-tolerant evaluation daemon (docs/SERVING.md).
//
// Daemon mode (default) serves the line protocol on an AF_UNIX socket
// until a client sends {"op":"shutdown"} or the process gets SIGINT /
// SIGTERM; client mode (--client) connects, forwards stdin lines, and
// prints each response — enough for shell smoke tests without a JSON
// toolchain:
//
//   wave_serve --socket=/tmp/wave.sock --snapshot=/tmp/wave.snap &
//   echo '{"id":"1","op":"eval","processors":256}' | \
//       wave_serve --socket=/tmp/wave.sock --client
//
// The --fault-* flags arm the deterministic fault-injection plan
// (src/serve/faults.h) for chaos experiments against a live daemon.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include <unistd.h>

#include "serve/client.h"
#include "serve/faults.h"
#include "serve/server.h"
#include "wave/context.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket=PATH [options]\n"
               "\n"
               "daemon options:\n"
               "  --workers=N             worker threads (default 2; 0 = all cores)\n"
               "  --shards=N              cache shards (default: worker count)\n"
               "  --cache-capacity=N      cached scenarios across shards (default 65536)\n"
               "  --analytic-queue=N      analytic admission bound (default 1024)\n"
               "  --des-queue=N           DES admission bound (default 8)\n"
               "  --retry-after-ms=N      shed backoff hint base (default 50)\n"
               "  --default-deadline-ms=N deadline for requests without one (default: none)\n"
               "  --snapshot=PATH         cache snapshot file (load at start, write on op)\n"
               "  --machines=DIR          add every *.cfg in DIR to the catalog\n"
               "\n"
               "fault injection (chaos experiments; see docs/SERVING.md):\n"
               "  --fault-seed=N --fault-slow-permille=N --fault-slow-ms=N\n"
               "  --fault-stall-permille=N --fault-stall-ms=N --fault-fail-snapshots=N\n"
               "\n"
               "client mode:\n"
               "  --client                forward stdin lines, print responses\n",
               argv0);
  return 2;
}

// SIGINT/SIGTERM handling via self-pipe: the handler only writes a byte;
// a helper thread blocked on the read end does the actual stop().
int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 's';
  (void)!::write(g_signal_pipe[1], &byte, 1);
}

bool parse_flag(const char* arg, const char* name, std::string& out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  out = arg + len + 1;
  return true;
}

bool parse_flag(const char* arg, const char* name, long& out) {
  std::string text;
  if (!parse_flag(arg, name, text)) return false;
  out = std::strtol(text.c_str(), nullptr, 10);
  return true;
}

int run_client(const std::string& socket_path) {
  wave::serve::Client client;
  const wave::Status connected = client.connect(socket_path);
  if (!connected.is_ok()) {
    std::fprintf(stderr, "wave_serve: %s\n", connected.to_string().c_str());
    return 1;
  }
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    const wave::Status sent = client.send_line(line);
    if (!sent.is_ok()) {
      std::fprintf(stderr, "wave_serve: %s\n", sent.to_string().c_str());
      return 1;
    }
    auto reply = client.read_line();
    if (!reply.ok()) {
      std::fprintf(stderr, "wave_serve: %s\n",
                   reply.status().to_string().c_str());
      return 1;
    }
    std::printf("%s\n", reply.value().c_str());
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  wave::ServeOptions options;
  wave::serve::FaultPlan::Spec fault_spec;
  bool any_faults = false;
  bool client_mode = false;
  std::string machines_dir;
  long value = 0;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string text;
    if (parse_flag(arg, "--socket", options.socket_path)) continue;
    if (parse_flag(arg, "--snapshot", options.snapshot_path)) continue;
    if (parse_flag(arg, "--machines", machines_dir)) continue;
    if (parse_flag(arg, "--workers", value)) {
      options.workers = static_cast<int>(value);
      continue;
    }
    if (parse_flag(arg, "--shards", value)) {
      options.shards = static_cast<int>(value);
      continue;
    }
    if (parse_flag(arg, "--cache-capacity", value)) {
      options.cache_capacity = static_cast<std::size_t>(value);
      continue;
    }
    if (parse_flag(arg, "--analytic-queue", value)) {
      options.analytic_queue_limit = static_cast<std::size_t>(value);
      continue;
    }
    if (parse_flag(arg, "--des-queue", value)) {
      options.des_queue_limit = static_cast<std::size_t>(value);
      continue;
    }
    if (parse_flag(arg, "--retry-after-ms", value)) {
      options.retry_after_ms = static_cast<std::uint32_t>(value);
      continue;
    }
    if (parse_flag(arg, "--default-deadline-ms", value)) {
      options.default_deadline_ms = static_cast<std::uint32_t>(value);
      continue;
    }
    if (parse_flag(arg, "--fault-seed", value)) {
      fault_spec.seed = static_cast<std::uint64_t>(value);
      any_faults = true;
      continue;
    }
    if (parse_flag(arg, "--fault-slow-permille", value)) {
      fault_spec.slow_eval_permille = static_cast<std::uint32_t>(value);
      any_faults = true;
      continue;
    }
    if (parse_flag(arg, "--fault-slow-ms", value)) {
      fault_spec.slow_eval_ms = static_cast<std::uint32_t>(value);
      any_faults = true;
      continue;
    }
    if (parse_flag(arg, "--fault-stall-permille", value)) {
      fault_spec.stall_worker_permille = static_cast<std::uint32_t>(value);
      any_faults = true;
      continue;
    }
    if (parse_flag(arg, "--fault-stall-ms", value)) {
      fault_spec.stall_ms = static_cast<std::uint32_t>(value);
      any_faults = true;
      continue;
    }
    if (parse_flag(arg, "--fault-fail-snapshots", value)) {
      fault_spec.fail_snapshot_writes = static_cast<std::uint32_t>(value);
      any_faults = true;
      continue;
    }
    if (std::strcmp(arg, "--client") == 0) {
      client_mode = true;
      continue;
    }
    std::fprintf(stderr, "wave_serve: unknown flag %s\n", arg);
    return usage(argv[0]);
  }

  if (options.socket_path.empty()) return usage(argv[0]);
  if (client_mode) return run_client(options.socket_path);

  wave::Context ctx;
  if (!machines_dir.empty()) {
    const wave::Status added = ctx.add_machine_dir(machines_dir);
    if (!added.is_ok()) {
      std::fprintf(stderr, "wave_serve: %s\n", added.to_string().c_str());
      return 1;
    }
  }

  wave::serve::FaultPlan faults(fault_spec);
  wave::serve::Server server(ctx, options,
                             any_faults ? &faults : nullptr);
  const wave::Status started = server.start();
  if (!started.is_ok()) {
    std::fprintf(stderr, "wave_serve: %s\n", started.to_string().c_str());
    return 1;
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "wave_serve: pipe() failed\n");
    return 1;
  }
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::thread signal_thread([&server] {
    char byte = 0;
    if (::read(g_signal_pipe[0], &byte, 1) == 1 && byte == 's')
      server.stop();  // releases wait() below
  });

  std::fprintf(stderr, "wave-serve: listening on %s (%d workers)\n",
               options.socket_path.c_str(), options.workers);
  server.wait();
  server.stop();

  // Unblock the signal thread if no signal arrived (shutdown came over
  // the protocol instead).
  const char byte = 'q';
  (void)!::write(g_signal_pipe[1], &byte, 1);
  signal_thread.join();
  ::close(g_signal_pipe[0]);
  ::close(g_signal_pipe[1]);

  const wave::ServeStats stats = server.stats();
  std::fprintf(stderr,
               "wave-serve: exiting — %llu requests (%llu ok, %llu degraded, "
               "%llu shed, %llu deadline_exceeded, %llu invalid, %llu eval "
               "errors)\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.ok),
               static_cast<unsigned long long>(stats.degraded),
               static_cast<unsigned long long>(stats.shed),
               static_cast<unsigned long long>(stats.deadline_exceeded),
               static_cast<unsigned long long>(stats.invalid),
               static_cast<unsigned long long>(stats.eval_errors));
  return 0;
}

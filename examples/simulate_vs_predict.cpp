// Running the discrete-event simulator directly and comparing it with the
// analytic model — the validation loop a user should run before trusting
// either for a new code or machine. One declarative sweep; the batch
// runner evaluates model and simulator for every point.
//
// Build and run:  ./build/examples/simulate_vs_predict
#include <cstdio>

#include "core/benchmarks.h"
#include "runner/runner.h"

using namespace wave;

int main(int argc, char** argv) {
  const common::Cli cli(argc, argv);
  const wave::Context ctx = runner::default_context();
  // --list-workloads / --list-comm-models / --list-machines
  // print the context's catalogs and exit.
  if (runner::handle_list_flags(cli, ctx)) return 0;
  runner::reject_workload_cli(cli, ctx);

  // A mid-size Chimaera-like problem so the simulation finishes in
  // seconds.
  core::benchmarks::ChimaeraConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 120;
  const core::AppParams app = core::benchmarks::chimaera(cfg);

  std::printf("Chimaera %gx%gx%g on simulated dual-core XT4 nodes\n\n",
              app.nx, app.ny, app.nz);

  runner::SweepGrid grid;
  grid.base().app = app;
  grid.base().machine = core::MachineConfig::xt4_dual_core();
  runner::apply_machine_cli(cli, ctx, grid);
  runner::apply_sim_threads_cli(cli, grid);
  grid.processors({16, 64, 256, 1024});

  const auto records = runner::BatchRunner(ctx, runner::options_from_cli(cli))
                           .run(grid, [&ctx](const runner::Scenario& s) {
                       return runner::model_vs_sim_metrics(ctx, s);
                     });

  runner::emit(
      cli, records,
      {runner::Column::label("P"),
       runner::Column::metric("model (ms)", "model_iter_us", 3, 1.0e-3),
       runner::Column::metric("sim (ms)", "sim_iter_us", 3, 1.0e-3),
       runner::Column::metric("err %", "err_pct", 2),
       runner::Column::integer("DES events", "sim_events"),
       runner::Column::metric("bus wait(us)", "sim_bus_wait_us", 1)});

  std::printf(
      "The simulator executes the real per-tile MPI schedule (blocking\n"
      "sends/receives, eager and rendezvous protocols, shared-bus DMA),\n"
      "so agreement here means the model's nfull/ndiag/Htile abstraction\n"
      "captures the code's actual behaviour — the paper's central claim.\n");
  return 0;
}

// Running the discrete-event simulator directly and comparing it with the
// analytic model — the validation loop a user should run before trusting
// either for a new code or machine.
//
// Build and run:  ./build/examples/simulate_vs_predict
#include <cstdio>

#include "common/units.h"
#include "core/benchmarks.h"
#include "core/solver.h"
#include "workloads/wavefront.h"

using namespace wave;

int main() {
  // A mid-size Chimaera-like problem so the simulation finishes in
  // seconds.
  core::benchmarks::ChimaeraConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 120;
  const core::AppParams app = core::benchmarks::chimaera(cfg);
  const core::MachineConfig machine = core::MachineConfig::xt4_dual_core();
  const core::Solver solver(app, machine);

  std::printf("Chimaera %gx%gx%g on simulated dual-core XT4 nodes\n\n",
              app.nx, app.ny, app.nz);
  std::printf("%6s %14s %14s %8s %12s %12s\n", "P", "model (ms)", "sim (ms)",
              "err %", "DES events", "bus wait(us)");
  for (int p : {16, 64, 256, 1024}) {
    const auto model = solver.evaluate(p);
    const auto sim = workloads::simulate_wavefront(app, machine, p);
    std::printf("%6d %14.3f %14.3f %8.2f %12llu %12.1f\n", p,
                model.iteration.total / 1000.0,
                sim.time_per_iteration / 1000.0,
                100.0 * common::relative_error(model.iteration.total,
                                               sim.time_per_iteration),
                static_cast<unsigned long long>(sim.events), sim.bus_wait);
  }

  std::printf(
      "\nThe simulator executes the real per-tile MPI schedule (blocking\n"
      "sends/receives, eager and rendezvous protocols, shared-bus DMA),\n"
      "so agreement here means the model's nfull/ndiag/Htile abstraction\n"
      "captures the code's actual behaviour — the paper's central claim.\n");
  return 0;
}

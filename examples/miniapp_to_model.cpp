// End-to-end plug-and-play: run the sequential transport mini-application
// to *measure* the model's work inputs (the §4.3 prescription), then
// predict parallel behaviour at scale — the full workflow a code team
// would follow for a new wavefront application.
//
// Build and run:  ./build/examples/miniapp_to_model
#include <cstdio>

#include "common/units.h"
#include "core/app_params.h"
#include "core/design_space.h"
#include "kernels/miniapp.h"
#include "runner/runner.h"

using namespace wave;

int main(int argc, char** argv) {
  const common::Cli cli(argc, argv);
  const wave::Context ctx = runner::default_context();
  // --list-workloads / --list-comm-models / --list-machines
  // print the context's catalogs and exit.
  if (runner::handle_list_flags(cli, ctx)) return 0;
  runner::reject_workload_cli(cli, ctx);

  // 1. The sequential science code: a source-iteration Sn solve on one
  //    processor's share of the grid (16x16x64 cells, 6 angles).
  kernels::MiniAppConfig mini;
  mini.nx = mini.ny = 16;
  mini.nz = 64;
  mini.tile_height = 4;
  mini.angles = 6;
  mini.sigma_s = 0.5;
  const kernels::MiniAppResult run = kernels::run_miniapp(mini);
  std::printf("mini-app: %s after %d source iterations, total flux %.4g\n",
              run.converged ? "converged" : "iteration-capped",
              run.iterations, run.scalar_flux_total);
  std::printf("measured Wg: %.4f us/cell (all %d angles)\n\n",
              run.wg_measured, mini.angles);

  // 2. Its Table 3 description: the mini-app's per-iteration structure is
  //    Sweep3D-like (8 octant sweeps, all-reduce for the convergence
  //    check), with Wg taken from the measurement above and the number of
  //    source iterations from the converged run.
  core::AppParams app;
  app.name = "mini-app";
  app.nx = app.ny = 1024;  // the production problem: 1024^2 x 512 cells
  app.nz = 512;
  app.wg = run.wg_measured;
  app.htile = mini.tile_height;
  app.sweeps = core::SweepStructure::sweep3d();
  app.boundary_bytes_per_cell = 8.0 * mini.angles;
  app.nonwavefront.allreduce_count = 1;  // convergence norm
  app.iterations_per_timestep = run.iterations;
  app.validate();

  // 3. Predictions: tile height tuning, then the scaling sweep through
  //    the batch runner.
  const auto machine =
      runner::machine_from_cli(cli, ctx, core::MachineConfig::xt4_dual_core());
  const auto scan =
      core::scan_htile(app, machine, ctx.comm_model_registry(), 16384);
  std::printf("optimal Htile at P = 16384: %.0f (%.1f%% faster than "
              "Htile = 1)\n\n",
              scan.best_htile, 100.0 * scan.improvement_vs_unit);

  app.htile = scan.best_htile;
  runner::SweepGrid grid;
  grid.base().app = app;
  grid.base().machine = machine;
  grid.processors({1024, 4096, 16384, 65536});

  auto records = runner::BatchRunner(ctx, runner::options_from_cli(cli)).run(grid);
  for (auto& r : records)
    r.set("comm_pct",
          100.0 * r.metric("model_iter_comm_us") / r.metric("model_iter_us"));

  runner::emit(cli, records,
               {runner::Column::label("P"),
                runner::Column::metric("timestep (s)", "model_timestep_us", 2,
                                       1.0 / common::kUsecPerSec),
                runner::Column::metric("comm %", "comm_pct", 1)});

  const int fit = core::processors_for_deadline(
      app, machine, ctx.comm_model_registry(),
      /*timestep_seconds=*/60.0, /*max_processors=*/262144);
  std::printf("smallest machine that solves one time step per minute: "
              "P = %d\n", fit);
  return 0;
}

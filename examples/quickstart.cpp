// Quickstart: predict the runtime and scaling of a wavefront application
// in a dozen lines.
//
// The plug-and-play workflow is exactly the paper's:
//   1. describe the machine (LogGP parameters + node architecture),
//   2. describe the application (the few Table 3 parameters — here the
//      stock Sweep3D benchmark, with Wg measured by a real kernel),
//   3. evaluate at any processor count.
//
// Build and run:  ./build/examples/quickstart
#include <cstdio>

#include "common/units.h"
#include "core/benchmarks.h"
#include "core/solver.h"
#include "kernels/transport.h"

int main() {
  using namespace wave;

  // 1. The machine: Cray XT4 LogGP parameters, dual-core nodes stacked
  //    1x2 in the processor grid.
  const core::MachineConfig machine = core::MachineConfig::xt4_dual_core();

  // 2. The application: Sweep3D on the 20-million-cell problem. Wg — the
  //    measured compute time for all angles of one cell — comes from
  //    timing a real discrete-ordinates kernel on *this* host (§4.3 says
  //    to measure it on the machine you predict for; we only have this
  //    one, so predictions describe "an XT4 with this host's cores").
  const common::usec wg = kernels::measure_wg_transport(/*angles=*/6);
  std::printf("measured Wg (6 angles): %.4f us/cell\n\n", wg);
  const core::AppParams app = core::benchmarks::sweep3d_20m(wg);

  // 3. Evaluate: time per iteration and per time step across system sizes.
  const core::Solver solver(app, machine);
  std::printf("%8s %12s %14s %8s %8s\n", "P", "iter (ms)", "timestep (s)",
              "fill %", "comm %");
  for (int p = 256; p <= 65536; p *= 4) {
    const core::ModelResult res = solver.evaluate(p);
    std::printf("%8d %12.3f %14.2f %8.1f %8.1f\n", p,
                res.iteration.total / 1000.0,
                common::usec_to_sec(res.timestep()),
                100.0 * res.fill.total / res.iteration.total,
                100.0 * res.iteration.comm / res.iteration.total);
  }

  std::printf(
      "\nReading the table: pipeline fill and communication shares grow\n"
      "with P — the model makes the diminishing returns quantitative\n"
      "before anyone queues for machine time.\n");
  return 0;
}

// Quickstart: predict the runtime and scaling of a wavefront application
// in a dozen lines.
//
// The plug-and-play workflow is exactly the paper's:
//   1. describe the machine (LogGP parameters + node architecture),
//   2. describe the application (the few Table 3 parameters — here the
//      stock Sweep3D benchmark, with Wg measured by a real kernel),
//   3. declare the sweep and hand it to the batch runner.
//
// Build and run:  ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "common/units.h"
#include "core/benchmarks.h"
#include "kernels/transport.h"
#include "runner/runner.h"

int main(int argc, char** argv) {
  using namespace wave;
  const common::Cli cli(argc, argv);
  // --list-workloads / --list-comm-models print the registries and exit.
  if (runner::handle_list_flags(cli)) return 0;
  runner::reject_workload_cli(cli);

  // 1. The machine: Cray XT4 LogGP parameters, dual-core nodes stacked
  //    1x2 in the processor grid — or any machines/*.cfg via --machine,
  //    evaluated under any registered backend via --comm-model.
  const core::MachineConfig machine =
      runner::machine_from_cli(cli, core::MachineConfig::xt4_dual_core());

  // 2. The application: Sweep3D on the 20-million-cell problem. Wg — the
  //    measured compute time for all angles of one cell — comes from
  //    timing a real discrete-ordinates kernel on *this* host (§4.3 says
  //    to measure it on the machine you predict for; we only have this
  //    one, so predictions describe "an XT4 with this host's cores").
  const common::usec wg = kernels::measure_wg_transport(/*angles=*/6);
  std::printf("measured Wg (6 angles): %.4f us/cell\n\n", wg);

  // 3. The sweep: time per iteration and per time step across system
  //    sizes, evaluated in parallel by the batch runner.
  runner::SweepGrid grid;
  grid.base().app = core::benchmarks::sweep3d_20m(wg);
  grid.base().machine = machine;
  grid.processors({256, 1024, 4096, 16384, 65536});

  auto records = runner::BatchRunner(runner::options_from_cli(cli)).run(grid);
  for (auto& r : records) {
    r.set("fill_pct",
          100.0 * r.metric("model_fill_us") / r.metric("model_iter_us"));
    r.set("comm_pct",
          100.0 * r.metric("model_iter_comm_us") / r.metric("model_iter_us"));
  }

  runner::emit(
      cli, records,
      {runner::Column::label("P"),
       runner::Column::metric("iter (ms)", "model_iter_us", 3, 1.0e-3),
       runner::Column::metric("timestep (s)", "model_timestep_us", 2,
                              1.0 / common::kUsecPerSec),
       runner::Column::metric("fill %", "fill_pct", 1),
       runner::Column::metric("comm %", "comm_pct", 1)});

  std::printf(
      "Reading the table: pipeline fill and communication shares grow\n"
      "with P — the model makes the diminishing returns quantitative\n"
      "before anyone queues for machine time.\n");
  return 0;
}

// Quickstart: predict the runtime and scaling of a wavefront application
// through the stable embedding facade — `#include "wave/wave.h"` is the
// only header an application needs.
//
// The plug-and-play workflow is exactly the paper's:
//   1. open a Context (machines, workloads and comm models, all by name),
//   2. describe the application (an app preset, with Wg — the measured
//      per-cell compute time — calibrated on *this* host),
//   3. ask: one point via Query, a sweep via Study, and repeated traffic
//      via the memoizing EvalService.
//
// Build and run:  ./build/examples/quickstart [machine-name-or-cfg-path]
#include <cstdio>
#include <string>

#include "wave/wave.h"

int main(int argc, char** argv) {
  // 1. The Context owns all state: registries plus the machine catalog.
  //    Nothing is process-global — embed as many contexts as you like.
  wave::Context ctx;
  ctx.add_machine_dir("machines");  // optional: shipped *.cfg configs
  const std::string machine = argc > 1 ? argv[1] : "xt4-dual";

  // 2. Sweep3D on the 20-million-cell problem. Wg is a *measured* model
  //    input (§4.3: time it on the machine you predict for; we only have
  //    this host, so predictions describe "an XT4 with this host's cores").
  const double wg = wave::measure_wg_us(/*angles=*/6);
  std::printf("measured Wg (6 angles): %.4f us/cell\n\n", wg);

  // 3a. One point: a fluent Query returning a typed Result. Errors come
  //     back as a Status — a typo'd name never throws across the API.
  auto point = ctx.query()
                   .machine(machine)
                   .app("sweep3d-20m")
                   .wg(wg)
                   .processors(1024)
                   .run();
  if (!point.ok()) {
    std::fprintf(stderr, "%s\n", point.status().to_string().c_str());
    return 1;
  }
  std::printf("P=1024 on %s: %.3f ms per iteration (%.1f%% communication)\n\n",
              point.value().machine.c_str(), point.value().time_us * 1e-3,
              100.0 * point.value().comm_us / point.value().time_us);

  // 3b. The scaling sweep: a Study evaluates the cartesian product on a
  //     thread pool; rows carry axis labels plus the full term breakdown.
  auto study = ctx.study()
                   .machine(machine)
                   .app("sweep3d-20m")
                   .wg(wg)
                   .processors({256, 1024, 4096, 16384, 65536})
                   .run();
  if (!study.ok()) {
    std::fprintf(stderr, "%s\n", study.status().to_string().c_str());
    return 1;
  }
  std::printf("%8s %12s %14s %8s %8s\n", "P", "iter (ms)", "timestep (s)",
              "fill %", "comm %");
  for (const auto& row : study.value().rows) {
    const double iter = row.metric_or("model_iter_us", 0.0);
    std::printf("%8s %12.3f %14.2f %8.1f %8.1f\n",
                row.label_or("P", "?").c_str(), iter * 1e-3,
                row.metric_or("model_timestep_us", 0.0) * 1e-6,
                100.0 * row.metric_or("model_fill_us", 0.0) / iter,
                100.0 * row.metric_or("model_iter_comm_us", 0.0) / iter);
  }

  // 3c. Production traffic: EvalService memoizes behind a canonical
  //     scenario key, so the dashboard's repeated questions cost a hash
  //     lookup, not a model solve.
  wave::EvalService service(ctx);
  const wave::Query hot =
      ctx.query().machine(machine).app("sweep3d-20m").wg(wg).processors(4096);
  for (int i = 0; i < 1000; ++i) {
    if (!service.evaluate(hot).ok()) return 1;
  }
  const auto stats = service.stats();
  std::printf(
      "\nEvalService: %llu evaluations -> %llu model solve(s), "
      "%llu cache hits\n",
      static_cast<unsigned long long>(stats.hits + stats.misses),
      static_cast<unsigned long long>(stats.misses),
      static_cast<unsigned long long>(stats.hits));

  std::printf(
      "\nReading the table: pipeline fill and communication shares grow\n"
      "with P — the model makes the diminishing returns quantitative\n"
      "before anyone queues for machine time.\n");
  return 0;
}

// Designing an imaginary wavefront code with the plug-and-play model.
//
// §4.1: "these application parameters support the evaluation of LU,
// Sweep3D, Chimaera, other possible wavefront applications, and many if
// not most possible application code design changes." This example builds
// a hypothetical 4-sweep code, explores three sweep-precedence designs and
// the Htile space, and cross-checks one design point against the
// discrete-event simulator.
//
// Build and run:  ./build/examples/custom_wavefront
#include <cstdio>

#include "common/units.h"
#include "core/app_params.h"
#include "core/solver.h"
#include "workloads/wavefront.h"

using namespace wave;

namespace {

/// A hypothetical seismic-kernel-like wavefront code: 4 sweeps per
/// iteration (one per horizontal direction pair), 3 coupled variables per
/// boundary cell, one all-reduce per iteration.
core::AppParams make_app(core::SweepStructure sweeps, double htile) {
  core::AppParams app;
  app.name = "imaginary-4sweep";
  app.nx = app.ny = 512;
  app.nz = 256;
  app.wg = 1.1;   // pretend-measured, µs per cell
  app.htile = htile;
  app.sweeps = std::move(sweeps);
  app.boundary_bytes_per_cell = 24.0;  // three doubles
  app.nonwavefront.allreduce_count = 1;
  app.iterations_per_timestep = 50;
  app.validate();
  return app;
}

using enum core::SweepOrigin;
using enum core::SweepPrecedence;

}  // namespace

int main() {
  const core::MachineConfig machine = core::MachineConfig::xt4_dual_core();

  // Three candidate sweep structures with identical total work.
  struct Design {
    const char* name;
    core::SweepStructure sweeps;
  };
  const Design designs[] = {
      {"barrier-heavy (every sweep completes)",
       core::SweepStructure({{NorthWest, FullComplete},
                             {SouthEast, FullComplete},
                             {NorthEast, FullComplete},
                             {SouthWest, FullComplete}})},
      {"chained corners (Sweep3D-style)",
       core::SweepStructure({{NorthWest, OriginFree},
                             {SouthEast, DiagonalComplete},
                             {NorthEast, OriginFree},
                             {SouthWest, FullComplete}})},
      {"same-direction pipeline (all sweeps from NW)",
       core::SweepStructure({{NorthWest, OriginFree},
                             {NorthWest, OriginFree},
                             {NorthWest, OriginFree},
                             {NorthWest, FullComplete}})},
  };

  std::printf("Sweep-structure design study at P = 4096, Htile = 2:\n");
  std::printf("%-45s %10s %14s\n", "design", "nfull/ndiag", "timestep (s)");
  for (const Design& d : designs) {
    const core::AppParams app = make_app(d.sweeps, 2.0);
    const core::Solver solver(app, machine);
    const auto res = solver.evaluate(4096);
    std::printf("%-45s %6d/%-4d %14.3f\n", d.name, app.sweeps.nfull(),
                app.sweeps.ndiag(), common::usec_to_sec(res.timestep()));
  }

  std::printf("\nHtile scan for the chained design at P = 4096:\n");
  std::printf("%6s %14s\n", "Htile", "timestep (s)");
  double best_h = 1.0, best_t = 1e300;
  for (double h : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    const core::AppParams app = make_app(designs[1].sweeps, h);
    const double t = common::usec_to_sec(
        core::Solver(app, machine).evaluate(4096).timestep());
    if (t < best_t) {
      best_t = t;
      best_h = h;
    }
    std::printf("%6.0f %14.3f\n", h, t);
  }
  std::printf("best Htile = %.0f\n", best_h);

  // Cross-check the chosen design against the simulator before trusting
  // the numbers (the plug-and-play promise is accuracy without bespoke
  // equations — verify it holds for *your* code's structure).
  const core::AppParams chosen = make_app(designs[1].sweeps, best_h);
  const auto model = core::Solver(chosen, machine).evaluate(256);
  const auto sim = workloads::simulate_wavefront(chosen, machine, 256);
  std::printf(
      "\ncross-check at P = 256: model %.3f ms/iter, simulated %.3f "
      "ms/iter (%.1f%% apart)\n",
      model.iteration.total / 1000.0, sim.time_per_iteration / 1000.0,
      100.0 * common::relative_error(model.iteration.total,
                                     sim.time_per_iteration));
  return 0;
}

// Designing an imaginary wavefront code with the plug-and-play model.
//
// §4.1: "these application parameters support the evaluation of LU,
// Sweep3D, Chimaera, other possible wavefront applications, and many if
// not most possible application code design changes." This example builds
// a hypothetical 4-sweep code, explores three sweep-precedence designs and
// the Htile space as declarative sweeps, and cross-checks one design
// point against the discrete-event simulator.
//
// Build and run:  ./build/examples/custom_wavefront
#include <cstdio>

#include "common/units.h"
#include "core/app_params.h"
#include "runner/runner.h"

using namespace wave;

namespace {

/// A hypothetical seismic-kernel-like wavefront code: 4 sweeps per
/// iteration (one per horizontal direction pair), 3 coupled variables per
/// boundary cell, one all-reduce per iteration.
core::AppParams make_app(core::SweepStructure sweeps, double htile) {
  core::AppParams app;
  app.name = "imaginary-4sweep";
  app.nx = app.ny = 512;
  app.nz = 256;
  app.wg = 1.1;  // pretend-measured, µs per cell
  app.htile = htile;
  app.sweeps = std::move(sweeps);
  app.boundary_bytes_per_cell = 24.0;  // three doubles
  app.nonwavefront.allreduce_count = 1;
  app.iterations_per_timestep = 50;
  app.validate();
  return app;
}

using enum core::SweepOrigin;
using enum core::SweepPrecedence;

}  // namespace

int main(int argc, char** argv) {
  const common::Cli cli(argc, argv);
  const wave::Context ctx = runner::default_context();
  // --list-workloads / --list-comm-models / --list-machines
  // print the context's catalogs and exit.
  if (runner::handle_list_flags(cli, ctx)) return 0;
  runner::reject_workload_cli(cli, ctx);
  const runner::BatchRunner batch(ctx, runner::options_from_cli(cli));

  // Three candidate sweep structures with identical total work.
  const core::SweepStructure barrier_heavy({{NorthWest, FullComplete},
                                            {SouthEast, FullComplete},
                                            {NorthEast, FullComplete},
                                            {SouthWest, FullComplete}});
  const core::SweepStructure chained({{NorthWest, OriginFree},
                                      {SouthEast, DiagonalComplete},
                                      {NorthEast, OriginFree},
                                      {SouthWest, FullComplete}});
  const core::SweepStructure same_direction({{NorthWest, OriginFree},
                                             {NorthWest, OriginFree},
                                             {NorthWest, OriginFree},
                                             {NorthWest, FullComplete}});

  std::printf("Sweep-structure design study at P = 4096, Htile = 2:\n");
  runner::SweepGrid designs;
  runner::apply_machine_cli(cli, ctx, designs);
  runner::apply_sim_threads_cli(cli, designs);
  designs.apps({{"barrier-heavy (every sweep completes)",
                 make_app(barrier_heavy, 2.0)},
                {"chained corners (Sweep3D-style)", make_app(chained, 2.0)},
                {"same-direction pipeline (all sweeps from NW)",
                 make_app(same_direction, 2.0)}},
               "design");
  designs.processors({4096});

  auto design_records = batch.run(designs);
  runner::emit(
      cli, design_records,
      {runner::Column::label("design"),
       runner::Column::computed("nfull/ndiag",
                                [&](const runner::RunRecord& r) {
                                  // recover the structure from the label
                                  const std::string& d = r.label("design");
                                  const core::SweepStructure& s =
                                      d.starts_with("barrier") ? barrier_heavy
                                      : d.starts_with("chained")
                                          ? chained
                                          : same_direction;
                                  return std::to_string(s.nfull()) + "/" +
                                         std::to_string(s.ndiag());
                                }),
       runner::Column::metric("timestep (s)", "model_timestep_us", 3,
                              1.0 / common::kUsecPerSec)});

  std::printf("Htile scan for the chained design at P = 4096:\n");
  runner::SweepGrid htile_grid;
  runner::apply_machine_cli(cli, ctx, htile_grid);
  runner::apply_sim_threads_cli(cli, htile_grid);
  htile_grid.processors({4096});
  htile_grid.values("Htile", {1, 2, 4, 8, 16},
                    [&](runner::Scenario& s, double h) {
                      s.app = make_app(chained, h);
                    });
  auto htile_records = batch.run(htile_grid);
  runner::emit(cli, htile_records,
               {runner::Column::label("Htile"),
                runner::Column::metric("timestep (s)", "model_timestep_us", 3,
                                       1.0 / common::kUsecPerSec)});

  double best_h = 1.0, best_t = 1e300;
  for (const auto& r : htile_records)
    if (r.metric("model_timestep_us") < best_t) {
      best_t = r.metric("model_timestep_us");
      best_h = std::stod(r.label("Htile"));
    }
  std::printf("best Htile = %.0f\n", best_h);

  // Cross-check the chosen design against the simulator before trusting
  // the numbers (the plug-and-play promise is accuracy without bespoke
  // equations — verify it holds for *your* code's structure).
  runner::SweepGrid check;
  runner::apply_machine_cli(cli, ctx, check);
  runner::apply_sim_threads_cli(cli, check);
  check.base().app = make_app(chained, best_h);
  check.processors({256});
  const auto checked = batch.run(check, [&ctx](const runner::Scenario& s) {
    return runner::model_vs_sim_metrics(ctx, s);
  });
  const auto& c = checked.front();
  std::printf(
      "\ncross-check at P = 256: model %.3f ms/iter, simulated %.3f "
      "ms/iter (%.1f%% apart)\n",
      c.metric("model_iter_us") / 1000.0, c.metric("sim_iter_us") / 1000.0,
      c.metric("err_pct"));
  return 0;
}

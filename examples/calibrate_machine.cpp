// Calibrating a machine's LogGP parameters from ping-pong measurements —
// the §3 procedure a user repeats on their own cluster to retarget every
// model in this library. The two placements are independent measurement
// campaigns, so they run as a two-point batch.
//
// Build and run:  ./build/examples/calibrate_machine
#include <cstdio>

#include "calibrate/fitting.h"
#include "common/rng.h"
#include "runner/runner.h"

using namespace wave;

int main(int argc, char** argv) {
  const common::Cli cli(argc, argv);
  const wave::Context ctx = runner::default_context();
  // --list-workloads / --list-comm-models / --list-machines
  // print the context's catalogs and exit.
  if (runner::handle_list_flags(cli, ctx)) return 0;
  runner::reject_workload_cli(cli, ctx);

  // Stand-in for "run the MPI ping-pong benchmark on your machine": we
  // measure the simulated XT4 (or any --machine config) with 1% timer
  // noise. On a real cluster the curve would be filled from MPI_Wtime
  // measurements instead.
  const loggp::MachineParams ground_truth =
      runner::machine_from_cli(cli, ctx, core::MachineConfig::xt4_dual_core())
          .loggp;
  const auto sizes = calibrate::default_sizes();

  runner::SweepGrid grid;
  grid.seed(7);
  grid.values("on_chip", {0, 1});

  const auto records =
      runner::BatchRunner(ctx, runner::options_from_cli(cli))
          .run(grid, [&](const runner::Scenario& s) {
            const bool on_chip = s.param("on_chip") != 0;
            common::Rng noise(s.seed);
            const auto curve = calibrate::measure_curve(
                ground_truth, on_chip, sizes, &noise, 0.01);
            calibrate::FitQuality quality;
            runner::Metrics m{
                {"points", static_cast<double>(curve.size())}};
            if (!on_chip) {
              const auto fit = calibrate::fit_offnode(
                  curve, ground_truth.eager_limit_bytes, &quality);
              m.emplace_back("G", fit.G);
              m.emplace_back("L", fit.L);
              m.emplace_back("o", fit.o);
            } else {
              const auto fit = calibrate::fit_onchip(
                  curve, ground_truth.eager_limit_bytes, &quality);
              m.emplace_back("Gcopy", fit.Gcopy);
              m.emplace_back("Gdma", fit.Gdma);
              m.emplace_back("o", fit.o);
              m.emplace_back("ocopy", fit.ocopy);
              m.emplace_back("odma", fit.odma());
            }
            m.emplace_back("r2_small", quality.r_squared_small);
            m.emplace_back("r2_large", quality.r_squared_large);
            return m;
          });

  const runner::RunRecord& off = records[0];
  const runner::RunRecord& on = records[1];

  std::printf("measured %lld off-node and %lld on-chip ping-pong points\n\n",
              static_cast<long long>(off.metric("points")),
              static_cast<long long>(on.metric("points")));

  std::printf("off-node fit (R^2 small/large: %.6f / %.6f)\n",
              off.metric("r2_small"), off.metric("r2_large"));
  std::printf("  G = %.6f us/B   (1/G = %.2f GB/s)\n", off.metric("G"),
              1.0 / off.metric("G") / 1000.0);
  std::printf("  L = %.3f us\n", off.metric("L"));
  std::printf("  o = %.3f us\n\n", off.metric("o"));

  std::printf("on-chip fit (R^2 small/large: %.6f / %.6f)\n",
              on.metric("r2_small"), on.metric("r2_large"));
  std::printf("  Gcopy = %.6f us/B\n", on.metric("Gcopy"));
  std::printf("  Gdma  = %.6f us/B\n", on.metric("Gdma"));
  std::printf("  o     = %.3f us (ocopy %.3f + odma %.3f)\n",
              on.metric("o"), on.metric("ocopy"), on.metric("odma"));

  std::printf(
      "\nDrop these values into wave::loggp::MachineParams and every model\n"
      "in the library (point-to-point, all-reduce, the plug-and-play\n"
      "wavefront solver) now predicts for your machine.\n");
  return 0;
}

// Calibrating a machine's LogGP parameters from ping-pong measurements —
// the §3 procedure a user repeats on their own cluster to retarget every
// model in this library.
//
// Build and run:  ./build/examples/calibrate_machine
#include <cstdio>

#include "calibrate/fitting.h"
#include "common/rng.h"

using namespace wave;

int main() {
  // Stand-in for "run the MPI ping-pong benchmark on your machine": we
  // measure the simulated XT4 with 1% timer noise. On a real cluster the
  // Curve would be filled from MPI_Wtime measurements instead.
  const loggp::MachineParams ground_truth = loggp::xt4();
  common::Rng noise(7);

  const auto sizes = calibrate::default_sizes();
  const auto off = calibrate::measure_curve(ground_truth, /*on_chip=*/false,
                                            sizes, &noise, 0.01);
  const auto on = calibrate::measure_curve(ground_truth, /*on_chip=*/true,
                                           sizes, &noise, 0.01);

  std::printf("measured %zu off-node and %zu on-chip ping-pong points\n\n",
              off.size(), on.size());

  calibrate::FitQuality q_off, q_on;
  const auto fit_off =
      calibrate::fit_offnode(off, ground_truth.eager_limit_bytes, &q_off);
  const auto fit_on =
      calibrate::fit_onchip(on, ground_truth.eager_limit_bytes, &q_on);

  std::printf("off-node fit (R^2 small/large: %.6f / %.6f)\n",
              q_off.r_squared_small, q_off.r_squared_large);
  std::printf("  G = %.6f us/B   (1/G = %.2f GB/s)\n", fit_off.G,
              1.0 / fit_off.G / 1000.0);
  std::printf("  L = %.3f us\n", fit_off.L);
  std::printf("  o = %.3f us\n\n", fit_off.o);

  std::printf("on-chip fit (R^2 small/large: %.6f / %.6f)\n",
              q_on.r_squared_small, q_on.r_squared_large);
  std::printf("  Gcopy = %.6f us/B\n", fit_on.Gcopy);
  std::printf("  Gdma  = %.6f us/B\n", fit_on.Gdma);
  std::printf("  o     = %.3f us (ocopy %.3f + odma %.3f)\n", fit_on.o,
              fit_on.ocopy, fit_on.odma());

  std::printf(
      "\nDrop these values into wave::loggp::MachineParams and every model\n"
      "in the library (point-to-point, all-reduce, the plug-and-play\n"
      "wavefront solver) now predicts for your machine.\n");
  return 0;
}

// A procurement study in the style of §5.2: how many processors should a
// site buy, and how should it partition them among concurrent particle
// transport simulations?
//
// Build and run:  ./build/examples/procurement_study
#include <cstdio>

#include "common/units.h"
#include "core/benchmarks.h"
#include "core/metrics.h"

using namespace wave;

int main() {
  // The site's production workload: 10^9-cell Sweep3D runs with 30 energy
  // groups, 10,000 time steps each.
  core::benchmarks::Sweep3dConfig cfg;
  cfg.energy_groups = 30;
  const core::Solver solver(core::benchmarks::sweep3d(cfg),
                            core::MachineConfig::xt4_dual_core());
  const long long timesteps = 10'000;

  std::printf("Candidate machine sizes (one simulation on the full "
              "machine):\n");
  std::printf("%10s %12s %22s\n", "P", "run (days)", "speedup vs half-size");
  double prev = -1.0;
  for (int p = 16384; p <= 262144; p *= 2) {
    const double days =
        core::simulation_seconds(solver, p, timesteps) / 86'400.0;
    if (prev < 0)
      std::printf("%10d %12.1f %22s\n", p, days, "-");
    else
      std::printf("%10d %12.1f %22.2f\n", p, days, prev / days);
    prev = days;
  }

  std::printf("\nPartitioning a 131072-core machine (R = one run's time, "
              "X = runs finished/second):\n");
  std::printf("%6s %12s %12s %14s %14s\n", "jobs", "P per job", "R (days)",
              "R/X (norm)", "R^2/X (norm)");
  const auto points = core::partition_study(solver, 131072, timesteps, 4096);
  double min_rx = 1e300, min_r2x = 1e300;
  for (const auto& pt : points) {
    min_rx = std::min(min_rx, pt.r_over_x);
    min_r2x = std::min(min_r2x, pt.r2_over_x);
  }
  for (const auto& pt : points) {
    std::printf("%6d %12d %12.1f %14.3f %14.3f\n", pt.partitions,
                pt.processors_per_job, pt.r_seconds / 86'400.0,
                pt.r_over_x / min_rx, pt.r2_over_x / min_r2x);
  }

  const auto rx = core::optimal_partition(
      points, core::PartitionCriterion::MinimizeROverX);
  const auto r2x = core::optimal_partition(
      points, core::PartitionCriterion::MinimizeR2OverX);
  std::printf(
      "\nRecommendation: run %d simulations in parallel to balance\n"
      "throughput against latency (R/X), or %d if single-run turnaround\n"
      "dominates decisions (R^2/X).\n",
      rx.partitions, r2x.partitions);
  return 0;
}

// A procurement study in the style of §5.2: how many processors should a
// site buy, and how should it partition them among concurrent particle
// transport simulations? Both questions are declarative sweeps over the
// same model.
//
// Build and run:  ./build/examples/procurement_study
#include <algorithm>
#include <cstdio>

#include "common/units.h"
#include "core/benchmarks.h"
#include "core/metrics.h"
#include "runner/runner.h"

using namespace wave;

int main(int argc, char** argv) {
  const common::Cli cli(argc, argv);
  const wave::Context ctx = runner::default_context();
  // --list-workloads / --list-comm-models / --list-machines
  // print the context's catalogs and exit.
  if (runner::handle_list_flags(cli, ctx)) return 0;
  runner::reject_workload_cli(cli, ctx);
  const runner::BatchRunner batch(ctx, runner::options_from_cli(cli));

  // The site's production workload: 10^9-cell Sweep3D runs with 30 energy
  // groups, 10,000 time steps each.
  core::benchmarks::Sweep3dConfig cfg;
  cfg.energy_groups = 30;
  const core::Solver solver(
      core::benchmarks::sweep3d(cfg),
      runner::machine_from_cli(cli, ctx, core::MachineConfig::xt4_dual_core()),
      ctx.comm_model_registry());
  const long long timesteps = 10'000;

  std::printf("Candidate machine sizes (one simulation on the full "
              "machine):\n");
  runner::SweepGrid sizes;
  std::vector<double> candidates;
  for (int p = 16384; p <= 262144; p *= 2) candidates.push_back(p);
  sizes.values("P", candidates);

  auto size_records = batch.run(sizes, [&](const runner::Scenario& s) {
    const double days = core::simulation_seconds(
                            solver, static_cast<int>(s.param("P")),
                            timesteps) /
                        86'400.0;
    return runner::Metrics{{"run_days", days}};
  });
  for (std::size_t i = 0; i < size_records.size(); ++i)
    if (i > 0)
      size_records[i].set("speedup_vs_half",
                          size_records[i - 1].metric("run_days") /
                              size_records[i].metric("run_days"));

  runner::emit(
      cli, size_records,
      {runner::Column::label("P"),
       runner::Column::metric("run (days)", "run_days", 1),
       runner::Column::metric("speedup vs half-size", "speedup_vs_half", 2)});

  std::printf("Partitioning a 131072-core machine (R = one run's time, "
              "X = runs finished/second):\n");
  runner::SweepGrid parts;
  parts.values("jobs", {1, 2, 4, 8, 16, 32});
  auto part_records = batch.run(parts, [&](const runner::Scenario& s) {
    const auto pt = core::partition_point(
        solver, 131072, static_cast<int>(s.param("jobs")), timesteps);
    return runner::Metrics{
        {"P_per_job", static_cast<double>(pt.processors_per_job)},
        {"r_days", pt.r_seconds / 86'400.0},
        {"r_over_x", pt.r_over_x},
        {"r2_over_x", pt.r2_over_x}};
  });

  double min_rx = 1e300, min_r2x = 1e300;
  for (const auto& r : part_records) {
    min_rx = std::min(min_rx, r.metric("r_over_x"));
    min_r2x = std::min(min_r2x, r.metric("r2_over_x"));
  }
  for (auto& r : part_records) {
    r.set("rx_norm", r.metric("r_over_x") / min_rx);
    r.set("r2x_norm", r.metric("r2_over_x") / min_r2x);
  }

  runner::emit(cli, part_records,
               {runner::Column::label("jobs"),
                runner::Column::integer("P per job", "P_per_job"),
                runner::Column::metric("R (days)", "r_days", 1),
                runner::Column::metric("R/X (norm)", "rx_norm", 3),
                runner::Column::metric("R^2/X (norm)", "r2x_norm", 3)});

  const auto best = [&](const char* key) {
    const runner::RunRecord* arg = nullptr;
    for (const auto& r : part_records)
      if (!arg || r.metric(key) < arg->metric(key)) arg = &r;
    return std::stoi(arg->label("jobs"));
  };
  std::printf(
      "Recommendation: run %d simulations in parallel to balance\n"
      "throughput against latency (R/X), or %d if single-run turnaround\n"
      "dominates decisions (R^2/X).\n",
      best("r_over_x"), best("r2_over_x"));
  return 0;
}
